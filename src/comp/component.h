// Component model: the unit of isolation, scheduling, and reboot.
//
// A VampOS component owns an arena (data + heap), exports functions through
// the runtime's interface registry, and is executed only by its own fibers.
// All cross-component interaction goes through Runtime::Call, which the
// runtime turns into message passing (VampOS mode) or a plain function call
// (vanilla-Unikraft baseline mode).
//
// Statefulness drives the recovery strategy, matching the paper's prototype:
//   kStateless    — PROCESS, SYSINFO, USER, NETDEV, TIMER: reboot = re-Init.
//   kStateful     — VFS, LWIP, 9PFS: reboot = checkpoint restore + replay
//                   (encapsulated restoration).
//   kUnrebootable — VIRTIO: shares state with the host; reboot refused (§VIII).
#pragma once

#include <cstdint>
#include <functional>
#include <new>
#include <optional>
#include <string>
#include <vector>

#include "base/panic.h"
#include "base/types.h"
#include "mem/arena.h"
#include "mem/buddy_allocator.h"
#include "msg/value.h"

namespace vampos::core {
class Runtime;
}

namespace vampos::comp {

enum class Statefulness { kStateless, kStateful, kUnrebootable };

/// How a component's writes feed its arena's dirty-page tracker (only
/// relevant when the runtime enables write tracking):
///   kNone    — untracked: the runtime conservatively taints the whole arena
///              every time control enters the component, so its checkpoints
///              never trust the bitmap but are always correct.
///   kState   — every mutable byte lives inside the MakeState root (plus
///              freshly allocated blocks, which the allocator flags at Alloc
///              time): the runtime marks just the state root per entry.
///   kTracked — the component marks each write itself via arena().MarkDirty;
///              the runtime adds nothing on entry.
enum class WriteTracking : std::uint8_t { kNone, kState, kTracked };

/// Per-exported-function metadata. Mirrors what makes a component
/// "VampOS-aware" in the paper: which calls are logged (Table II), how a log
/// entry binds to a session (fd / socket id) for session-aware shrinking,
/// and which functions cancel a session's entries.
struct FnOptions {
  /// Record inbound calls of this function for encapsulated restoration.
  bool logged = false;
  /// Replayed during restoration. Functions that do not change component
  /// state (fstat-style reads) set this false and are skipped.
  bool state_changing = true;
  /// Index of the argument holding the session id (fd, socket); -1 if none.
  int session_arg = -1;
  /// Session id comes from the return value (open() returning the fd).
  bool session_from_ret = false;
  /// Canceling function (close()): on success, prunes the session's
  /// read/write-style entries and any stale same-id open/close pair.
  bool canceling = false;
};

class CallCtx;

/// Exported-function implementation. Runs on the owning component's fiber in
/// normal execution and on the message thread in restore mode.
using Handler = std::function<msg::MsgValue(CallCtx&, const msg::Args&)>;

/// Execution context passed to handlers (and app code via the runtime).
class CallCtx {
 public:
  CallCtx(core::Runtime& rt, ComponentId self, bool restoring,
          std::optional<std::int64_t> forced_session = std::nullopt)
      : rt_(rt),
        self_(self),
        restoring_(restoring),
        forced_session_(forced_session) {}

  /// Invokes a function on another component. In normal mode: message-pass
  /// and block until the reply. In restore mode: the logged return value is
  /// fed back and the target component is never entered (paper Fig 3).
  msg::MsgValue Call(FunctionId fn, msg::Args args);

  [[nodiscard]] ComponentId self() const { return self_; }
  [[nodiscard]] bool restoring() const { return restoring_; }
  [[nodiscard]] core::Runtime& runtime() { return rt_; }

  /// Runtime-data vault (paper §V-B): saves component data that cannot be
  /// reconstructed by replay (e.g. LWIP's TCP sequence/ACK numbers). The
  /// vault lives in the message domain's trust zone and survives reboots.
  void SaveRuntimeData(const std::string& key, msg::MsgValue value);
  std::optional<msg::MsgValue> LoadRuntimeData(const std::string& key);

  /// Explicit fail-stop for the calling component.
  [[noreturn]] void Panic(const std::string& detail);

  /// During replay of a session-creating call (open/socket/lookup), the
  /// session id the original execution allocated. Handlers MUST install the
  /// returned resource under this id so that later replayed entries, and
  /// running components holding the id, stay consistent even after
  /// session-aware shrinking pruned unrelated allocations.
  [[nodiscard]] std::optional<std::int64_t> forced_session() const {
    return forced_session_;
  }

 private:
  core::Runtime& rt_;
  ComponentId self_;
  bool restoring_;
  std::optional<std::int64_t> forced_session_;
};

/// Interface used by Component::Init to export functions and claim arena
/// memory, and by Component::Bind to import other components' functions.
class InitCtx {
 public:
  InitCtx(core::Runtime& rt, ComponentId self) : rt_(rt), self_(self) {}

  FunctionId Export(const std::string& name, FnOptions options,
                    Handler handler);

  /// Resolves a function exported by another component; fatal if missing
  /// (configuration errors should fail at boot, not at first call).
  FunctionId Import(const std::string& component,
                    const std::string& function);

  /// Non-fatal Import for optional peers: nullopt when the component or
  /// function is absent from this assembly (e.g. a stack built without a
  /// filesystem).
  std::optional<FunctionId> TryImport(const std::string& component,
                                      const std::string& function);

  [[nodiscard]] core::Runtime& runtime() { return rt_; }
  [[nodiscard]] ComponentId self() const { return self_; }

 private:
  core::Runtime& rt_;
  ComponentId self_;
};

/// Hook-compaction request: when a component's log exceeds the shrink
/// threshold, the runtime asks the component to summarize a session's entry
/// run into synthetic entries (paper: "extracts and resets the offset value
/// in VFS after calling close()"). Returns the replacement entries' (fn,
/// args) pairs; the originals are dropped.
struct CompactionRequest {
  std::int64_t session;
  std::vector<std::pair<FunctionId, msg::Args>> entries;  // originals
};
using CompactionHook = std::function<
    std::vector<std::pair<FunctionId, msg::Args>>(const CompactionRequest&)>;

class Component {
 public:
  Component(std::string name, Statefulness statefulness,
            std::size_t arena_size);
  virtual ~Component() = default;
  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  /// Phase 1 of boot (and of every stateless re-Init): allocate state inside
  /// the arena, export functions. Must be deterministic.
  virtual void Init(InitCtx& ctx) = 0;

  /// Phase 2 of boot: resolve imported function ids. Not re-run on reboot
  /// (ids are stable).
  virtual void Bind(InitCtx& /*ctx*/) {}

  /// Called after a checkpoint restore, before log replay. Components that
  /// saved runtime data re-ingest it here (or after replay, see
  /// OnReplayed). `ctx.restoring()` is true.
  virtual void OnRestored(CallCtx& /*ctx*/) {}

  /// Called after log replay completes; last chance to patch state from the
  /// runtime-data vault (LWIP re-installs live TCP seq/ACK numbers here).
  virtual void OnReplayed(CallCtx& /*ctx*/) {}

  /// Optional compaction hook for threshold-triggered log shrinking.
  [[nodiscard]] virtual CompactionHook compaction_hook() { return nullptr; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Statefulness statefulness() const { return statefulness_; }
  [[nodiscard]] ComponentId id() const { return id_; }
  [[nodiscard]] mem::Arena& arena() { return arena_; }
  [[nodiscard]] mem::BuddyAllocator& alloc() { return *alloc_; }
  /// True once Init engaged the arena allocator (alloc() is only valid then).
  [[nodiscard]] bool has_alloc() const { return alloc_.has_value(); }
  [[nodiscard]] WriteTracking write_tracking() const {
    return write_tracking_;
  }

  /// Called by the runtime before control enters component code (handler
  /// dispatch, log replay, restore hooks, compaction): applies the
  /// conservative dirty marks this component's tracking level requires.
  /// No-op when the arena has no tracker attached.
  void TaintForEntry() const {
    switch (write_tracking_) {
      case WriteTracking::kNone:
        arena_.TaintAll();
        break;
      case WriteTracking::kState:
        arena_.MarkDirty(state_root_, state_root_bytes_);
        break;
      case WriteTracking::kTracked:
        break;
    }
  }

 protected:
  /// Convenience: placement-construct the component's state root in the
  /// arena. Call from Init().
  template <typename T, typename... Args>
  T* MakeState(Args&&... args);

  /// Declares how this component's writes are tracked. Call from the
  /// constructor; kState is only sound when all post-Init writes land in
  /// the MakeState root or in blocks allocated during the same entry.
  void set_write_tracking(WriteTracking wt) { write_tracking_ = wt; }

 private:
  friend class core::Runtime;

  void RecordStateRoot(void* p, std::size_t bytes) {
    auto* b = static_cast<std::byte*>(p);
    if (state_root_ == nullptr) {
      state_root_ = b;
      state_root_bytes_ = bytes;
      return;
    }
    std::byte* lo = state_root_ < b ? state_root_ : b;
    std::byte* hi1 = state_root_ + state_root_bytes_;
    std::byte* hi2 = b + bytes;
    std::byte* hi = hi1 > hi2 ? hi1 : hi2;
    state_root_ = lo;
    state_root_bytes_ = static_cast<std::size_t>(hi - lo);
  }

  std::string name_;
  Statefulness statefulness_;
  mem::Arena arena_;
  std::optional<mem::BuddyAllocator> alloc_;
  ComponentId id_ = kComponentNone;
  WriteTracking write_tracking_ = WriteTracking::kNone;
  std::byte* state_root_ = nullptr;
  std::size_t state_root_bytes_ = 0;
};

template <typename T, typename... Args>
T* Component::MakeState(Args&&... args) {
  void* p = alloc().Alloc(sizeof(T));
  if (p == nullptr) {
    throw ComponentFault(id_, FaultKind::kAllocFailure,
                         "arena exhausted during Init of " + name_);
  }
  RecordStateRoot(p, sizeof(T));
  return new (p) T(std::forward<Args>(args)...);
}

}  // namespace vampos::comp
