#include "mem/arena.h"

#include <cstring>
#include <utility>

namespace vampos::mem {

namespace {
std::size_t RoundUpToPage(std::size_t n) {
  return (n + Arena::kPageSize - 1) / Arena::kPageSize * Arena::kPageSize;
}
}  // namespace

Arena::Arena(std::size_t size, std::string name)
    : size_(RoundUpToPage(size)),
      name_(std::move(name)),
      storage_(std::make_unique<std::byte[]>(size_)) {
  std::memset(storage_.get(), 0, size_);
}

void Arena::EnableDirtyTracking() {
  if (tracker_ != nullptr) return;
  tracker_ = std::make_unique<DirtyTracker>(size_);
  // Anything written before tracking began is untracked by definition.
  tracker_->MarkAll();
}

}  // namespace vampos::mem
