// Checkpoint engine: byte-level snapshots of component arenas.
//
// Implements the paper's checkpoint-based initialization (§V-E): after a
// component finishes its boot routine, the runtime captures its arena; a
// reboot restores that post-init image instead of re-running shutdown/boot
// routines, which would have side effects on other running components.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mem/arena.h"

namespace vampos::mem {

class Snapshot {
 public:
  Snapshot() = default;

  /// Captures the full arena image. O(arena size) copy — this is the
  /// dominant cost of a stateful component reboot (paper Fig 6).
  static Snapshot Capture(const Arena& arena);

  /// Restores the image in place. The arena must be the one captured from
  /// (same size, same address space role).
  void Restore(Arena& arena) const;

  [[nodiscard]] bool empty() const { return bytes_.empty(); }
  [[nodiscard]] std::size_t size_bytes() const { return bytes_.size(); }

 private:
  std::vector<std::byte> bytes_;
};

}  // namespace vampos::mem
