// Checkpoint engine: snapshots of component arenas at page granularity.
//
// Implements the paper's checkpoint-based initialization (§V-E): after a
// component finishes its boot routine, the runtime captures its arena; a
// reboot restores that post-init image instead of re-running shutdown/boot
// routines, which would have side effects on other running components.
//
// The snapshot cost is what bounds how aggressively the runtime can reboot
// (paper Fig 6: snapshot restoration dominates a stateful reboot), so the
// engine works at fixed 4 KiB page granularity with per-page content hashes:
//
//   * Capture      — hashes every page once; zero pages are elided (no
//                    storage) and non-zero pages are interned into a shared
//                    read-only PageBaseline, so N components with mostly-
//                    identical post-init images hold one pooled copy.
//   * Recapture    — incremental re-snapshot (what periodic rejuvenation
//                    refreshes hit): re-hashes the live arena and copies
//                    only pages whose hash changed since the last capture.
//   * Restore      — diff-restore: hashes the live arena, compares against
//                    the checkpoint hash per page, and copies only divergent
//                    pages, leaving clean cachelines untouched.
//
// The hash pass is embarrassingly parallel and can be spread over worker
// threads (SnapshotConfig::workers); the page classification and copies stay
// on the calling thread so the result is deterministic.
//
// The legacy full-arena memcpy engine is kept as SnapshotMode::kFullCopy
// (selected via RuntimeOptions) and verified byte-equivalent by tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/clock.h"
#include "base/thread_annotations.h"
#include "base/types.h"
#include "mem/arena.h"

namespace vampos::mem {

enum class SnapshotMode { kFullCopy, kIncremental };

/// Accounting for one capture/recapture/restore operation. Bytes and pages
/// reflect what the operation actually touched — the whole point of the
/// incremental engine is that these scale with the delta, not the arena.
struct SnapshotStats {
  std::size_t pages_total = 0;   // pages covered by the arena
  std::size_t pages_dirty = 0;   // pages copied (divergent / newly stored)
  std::size_t pages_zero = 0;    // zero pages elided from storage
  std::size_t pages_shared = 0;  // pages deduplicated against the baseline
  std::size_t pages_skipped = 0;  // pages never touched (tracker said clean)
  std::size_t audit_misses = 0;  // pages changed without a dirty bit set
  std::size_t bytes_copied = 0;  // bytes memcpy'd/memset by this operation
  bool dirty_fast = false;       // op consumed the dirty bitmap (O(dirty))
  bool audited = false;          // randomized audit full-scan ran
  Nanos hash_ns = 0;             // page-hash pass (parallelizable)
  Nanos copy_ns = 0;             // classification + copy pass
};

/// Content-addressed pool of read-only 4 KiB pages shared by every
/// checkpoint of one runtime. Interning verifies candidate pages byte-wise
/// against same-hash pool entries, so hash collisions chain instead of
/// aliasing. Pages are never evicted: the pool holds post-init images whose
/// lifetime is the runtime's.
class PageBaseline {
 public:
  PageBaseline() = default;
  PageBaseline(const PageBaseline&) = delete;
  PageBaseline& operator=(const PageBaseline&) = delete;

  /// Returns a stable pointer to a pooled copy of `page` (4 KiB). Sets
  /// `*reused` when an identical page was already pooled (dedup hit — no
  /// copy happened).
  const std::byte* Intern(const std::byte* page, std::uint64_t hash,
                          bool* reused);

  [[nodiscard]] std::size_t pages() const { return pooled_; }
  [[nodiscard]] std::size_t bytes() const {
    return pooled_ * Arena::kPageSize;
  }
  /// Dedup hits: interned pages served from an existing pooled copy.
  [[nodiscard]] std::uint64_t hits() const { return hits_; }

 private:
  // Interning happens only on the capture/recapture path, which never runs
  // on a recovery worker: workers only *read* pooled pages through the
  // PageEntry::shared pointers their job's snapshots already hold.
  // hash -> pooled pages with that hash (collision chain, memcmp-verified).
  std::unordered_map<std::uint64_t, std::vector<std::unique_ptr<std::byte[]>>>
      pool_ VAMP_MSG_THREAD_ONLY;
  std::size_t pooled_ VAMP_MSG_THREAD_ONLY = 0;
  std::uint64_t hits_ VAMP_MSG_THREAD_ONLY = 0;
};

/// Knobs for one snapshot operation, assembled by the runtime from
/// RuntimeOptions (mode, workers) and its shared baseline.
struct SnapshotConfig {
  SnapshotMode mode = SnapshotMode::kIncremental;
  /// Threads for the page-hash pass; <= 1 hashes on the calling thread.
  int workers = 0;
  /// Shared read-only page pool; nullptr keeps every stored page private.
  PageBaseline* baseline = nullptr;
  /// Clock for the hash/copy phase split; nullptr leaves *_ns at zero.
  const Clock* clock = nullptr;
  /// Consume per-arena dirty bitmaps (Arena::EnableDirtyTracking) so
  /// Recapture/Restore touch only flagged pages. Requires kIncremental.
  bool dirty_tracking = false;
  /// Audit sampling for the fast path: 0 = never, 1 = every operation,
  /// N = roughly 1-in-N operations full-hash-scan anyway and check that no
  /// page changed without its dirty bit set.
  std::uint32_t audit_rate = 0;
  /// On an audit miss: Fatal (fail-stop, for debug builds) when true, or
  /// count the miss and resync the page when false.
  bool audit_fail_stop = false;
};

class Snapshot {
 public:
  Snapshot() = default;

  /// Captures the full arena image with the legacy full-copy engine.
  /// O(arena size) on every capture and restore.
  static Snapshot Capture(const Arena& arena);

  /// Captures the arena under `config`: page-granular with zero-page
  /// elision and baseline sharing for kIncremental, a plain full copy for
  /// kFullCopy.
  static Snapshot Capture(const Arena& arena, const SnapshotConfig& config,
                          SnapshotStats* stats = nullptr);

  /// Incremental re-snapshot into this checkpoint: re-hashes the arena and
  /// copies only pages whose hash changed since the last (re)capture. A
  /// full-copy snapshot re-copies everything. Errors on size mismatch.
  [[nodiscard]] Status Recapture(const Arena& arena,
                                 const SnapshotConfig& config,
                                 SnapshotStats* stats = nullptr);

  /// Restores the image in place. Incremental snapshots diff-restore:
  /// only pages whose live hash diverges from the checkpoint are written.
  /// A size mismatch (corrupt/foreign checkpoint) is an error status — the
  /// caller owns turning it into a component fault, not a process abort.
  [[nodiscard]] Status Restore(Arena& arena,
                               const SnapshotConfig& config = {},
                               SnapshotStats* stats = nullptr) const;

  [[nodiscard]] bool empty() const {
    return bytes_.empty() && pages_.empty();
  }
  /// Logical bytes covered by the checkpoint (the captured arena's size).
  [[nodiscard]] std::size_t size_bytes() const;
  /// Bytes of private storage this snapshot actually holds — excludes
  /// zero-elided pages and pages served by the shared baseline.
  [[nodiscard]] std::size_t stored_bytes() const;
  [[nodiscard]] SnapshotMode mode() const { return mode_; }
  [[nodiscard]] std::size_t page_count() const { return pages_.size(); }

  /// 64-bit content hash of one 4 KiB page; sets `*is_zero` when the page
  /// is all zeroes (detected in the same pass).
  static std::uint64_t HashPage(const std::byte* page, bool* is_zero);

  /// Hash actually used by the engine: the test override when one is
  /// installed, else HashPage. The override must still report `*is_zero`
  /// truthfully — zero-page elision relies on it.
  static std::uint64_t PageHash(const std::byte* page, bool* is_zero);

  using PageHashFn = std::uint64_t (*)(const std::byte* page, bool* is_zero);
  /// Test seam: overrides the page hash so tests can force collisions
  /// (nullptr restores the real hash). Returns the previous override so
  /// callers can RAII-restore it.
  static PageHashFn SetPageHashForTest(PageHashFn fn);

 private:
  enum class PageSource : std::uint8_t { kZero, kBaseline, kPrivate };

  struct PageEntry {
    std::uint64_t hash = 0;
    PageSource src = PageSource::kZero;
    std::uint32_t slot = 0;            // private_pages_ index (kPrivate)
    const std::byte* shared = nullptr;  // pooled page (kBaseline)
  };

  /// Checkpoint content of page `i`; nullptr means "all zeroes".
  [[nodiscard]] const std::byte* PageData(std::size_t i) const;
  /// A writable private slot for page `i`, reusing its current slot when it
  /// already owns one.
  std::byte* WritablePage(std::size_t i);
  void ReleasePage(std::size_t i);

  /// True when the arena's tracker is the one this snapshot last
  /// synchronized with and nobody cleared it since — the precondition for
  /// trusting its bits as "only these pages may differ".
  [[nodiscard]] const DirtyTracker* SyncedTracker(
      const Arena& arena, const SnapshotConfig& config) const;
  /// Records checkpoint == arena: clears the tracker and remembers the
  /// (tracker, generation) pair the fast path must match. Mutable-only
  /// bookkeeping, so Restore can stay const.
  void MarkTrackerSynced(const Arena& arena,
                         const SnapshotConfig& config) const;

  static PageHashFn hash_override_;

  SnapshotMode mode_ = SnapshotMode::kFullCopy;
  std::vector<std::byte> bytes_;  // kFullCopy image

  // kIncremental representation.
  std::size_t logical_bytes_ = 0;
  std::vector<PageEntry> pages_;
  std::vector<std::unique_ptr<std::byte[]>> private_pages_;
  std::vector<std::uint32_t> free_slots_;

  // Dirty-tracking synchronization point. A generation mismatch (another
  // snapshot consumed the bitmap, or the checkpoint was swapped out) makes
  // the engine fall back to the full hash scan instead of trusting bits it
  // did not synchronize against.
  mutable const DirtyTracker* synced_tracker_ = nullptr;
  mutable std::uint64_t synced_gen_ = 0;
};

}  // namespace vampos::mem
