#include "mem/dirty_tracker.h"

#include <algorithm>
#include <bit>

namespace vampos::mem {

DirtyTracker::DirtyTracker(std::size_t arena_bytes)
    : n_pages_((arena_bytes + kPageSize - 1) / kPageSize),
      bits_((n_pages_ + 63) / 64, 0) {}

void DirtyTracker::Mark(std::size_t offset, std::size_t len) {
  if (len == 0) return;
  marks_++;
  if (saturated_) return;  // already everything-dirty; bits are redundant
  const std::size_t first = offset / kPageSize;
  std::size_t last = (offset + len - 1) / kPageSize;
  if (first >= n_pages_) return;
  if (last >= n_pages_) last = n_pages_ - 1;
  // Large ranges (whole state roots) fill word-at-a-time.
  std::size_t page = first;
  while (page <= last) {
    if ((page & 63) == 0 && page + 63 <= last) {
      bits_[page >> 6] = ~std::uint64_t{0};
      page += 64;
      continue;
    }
    bits_[page >> 6] |= std::uint64_t{1} << (page & 63);
    ++page;
  }
}

void DirtyTracker::MarkAll() {
  taints_++;
  saturated_ = true;
}

void DirtyTracker::Clear() {
  std::fill(bits_.begin(), bits_.end(), 0);
  saturated_ = false;
  ++generation_;
}

std::size_t DirtyTracker::DirtyPages() const {
  if (saturated_) return n_pages_;
  std::size_t total = 0;
  for (std::uint64_t word : bits_) {
    total += static_cast<std::size_t>(std::popcount(word));
  }
  return total;
}

bool DirtyTracker::RollAudit(std::uint32_t rate) {
  if (rate == 0) return false;
  if (rate == 1) return true;
  // xorshift64: cheap, deterministic, never zero.
  rng_ ^= rng_ << 13;
  rng_ ^= rng_ >> 7;
  rng_ ^= rng_ << 17;
  return rng_ % rate == 0;
}

}  // namespace vampos::mem
