// Write-time dirty-page tracking for arenas.
//
// A DirtyTracker is a per-arena bitmap with one bit per 4 KiB page, set by
// the sanctioned write paths (allocator metadata updates, checked MPK
// writes, message-domain copies, explicit Arena::MarkDirty calls from
// component code). The checkpoint engine consumes the bitmap so that
// Recapture/Restore cost O(dirty pages) instead of O(arena footprint) — the
// write-tracking analogue of PRISM-style operation logs: record mutations
// when they happen so recovery scales with what changed.
//
// Untracked writes are handled two ways:
//   * MarkAll() is the conservative escape hatch — a whole-arena taint used
//     by the runtime whenever control passes through a path that may write
//     without marking (e.g. a component that has not declared its hooks
//     write-tracked). A saturated tracker makes every Test() true in O(1).
//   * RollAudit() drives the snapshot engine's randomized audit mode: on a
//     sampled operation the engine full-hash-scans anyway and flags any page
//     that changed without its bit set.
//
// Clearing the bitmap bumps `generation()`; the snapshot engine records the
// (tracker, generation) pair it last synchronized against and falls back to
// a full hash scan when they no longer match, so two snapshots sharing one
// arena cannot consume each other's bits.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vampos::mem {

class DirtyTracker {
 public:
  static constexpr std::size_t kPageSize = 4096;

  explicit DirtyTracker(std::size_t arena_bytes);

  DirtyTracker(const DirtyTracker&) = delete;
  DirtyTracker& operator=(const DirtyTracker&) = delete;

  /// Flags every page overlapping [offset, offset+len) as dirty.
  void Mark(std::size_t offset, std::size_t len);

  /// Conservative taint: every page is dirty until the next Clear(). O(1).
  void MarkAll();

  /// Resets every bit to clean and bumps the generation. Called by the
  /// snapshot engine once a capture/restore has synchronized arena and
  /// checkpoint content.
  void Clear();

  /// True when `page` must be treated as dirty.
  [[nodiscard]] bool Test(std::size_t page) const {
    if (saturated_) return true;
    if (page >= n_pages_) return false;
    return (bits_[page >> 6] >> (page & 63)) & 1u;
  }

  [[nodiscard]] bool saturated() const { return saturated_; }
  [[nodiscard]] std::size_t pages() const { return n_pages_; }
  /// Bumped by Clear(); lets consumers detect that someone else reset the
  /// bitmap since they last synchronized.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }
  /// Number of pages currently flagged dirty (pages() when saturated).
  [[nodiscard]] std::size_t DirtyPages() const;

  /// Lifetime counters, for the runtime's snapshot.dirty_* metrics.
  [[nodiscard]] std::uint64_t marks() const { return marks_; }
  [[nodiscard]] std::uint64_t taints() const { return taints_; }

  /// Audit sampling: true on roughly 1-in-`rate` calls (0 = never,
  /// 1 = always). Deterministic per-tracker xorshift sequence, so runs are
  /// reproducible without a global RNG.
  [[nodiscard]] bool RollAudit(std::uint32_t rate);

 private:
  std::size_t n_pages_;
  std::vector<std::uint64_t> bits_;
  bool saturated_ = false;
  std::uint64_t generation_ = 1;
  std::uint64_t marks_ = 0;
  std::uint64_t taints_ = 0;
  std::uint64_t rng_ = 0x2545F4914F6CDD1Dull;
};

}  // namespace vampos::mem
