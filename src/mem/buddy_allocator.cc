#include "mem/buddy_allocator.h"

#include <bit>
#include <cstring>

#include "base/panic.h"

namespace vampos::mem {

namespace {
constexpr std::uint32_t kNull = 0xFFFFFFFFu;
constexpr std::uint64_t kMagic = 0xB0DDA110C8000001ULL;

// Order-map encoding, one byte per 64-byte granule:
//   kInterior           — granule is inside a block, not its start
//   order | kFreeBit    — free block of `order` starts here
//   order               — allocated block of `order` starts here
constexpr std::uint8_t kInterior = 0xFF;
constexpr std::uint8_t kFreeBit = 0x80;

int OrderFor(std::size_t size) {
  if (size < (1u << BuddyAllocator::kMinOrder)) {
    return BuddyAllocator::kMinOrder;
  }
  return std::bit_width(size - 1);  // ceil(log2(size))
}
}  // namespace

struct BuddyAllocator::Header {
  std::uint64_t magic;
  std::uint32_t heap_off;    // arena offset of heap base
  std::uint32_t heap_size;   // power of two
  std::int32_t top_order;    // log2(heap_size)
  std::uint32_t map_off;     // arena offset of order map
  std::uint32_t free_head[kMaxOrders];  // heap-relative offsets
  AllocStats stats;
};

struct BuddyAllocator::FreeBlock {
  std::uint32_t next;
  std::uint32_t prev;
};

BuddyAllocator::BuddyAllocator(Arena& arena) : BuddyAllocator(arena, false) {}

BuddyAllocator BuddyAllocator::Attach(Arena& arena) {
  return BuddyAllocator(arena, true);
}

BuddyAllocator::BuddyAllocator(Arena& arena, bool attach) : arena_(&arena) {
  if (attach) {
    if (header()->magic != kMagic) {
      Fatal("BuddyAllocator::Attach on unformatted arena '%s'",
            arena.name().c_str());
    }
    return;
  }
  // Format: [Header][order map][heap (power-of-two, 64B-aligned)].
  auto* h = header();
  std::memset(h, 0, sizeof(Header));
  h->magic = kMagic;

  const std::size_t granule = 1u << kMinOrder;
  // Iterate: the map size depends on the heap size which depends on the map
  // size; a single fixed-point pass with a conservative bound is enough.
  std::size_t meta = sizeof(Header);
  std::size_t avail = arena.size() - meta;
  // Worst-case map: one byte per granule of the whole arena.
  std::size_t map_bytes = arena.size() / granule;
  avail = (avail > map_bytes) ? avail - map_bytes : 0;
  std::size_t heap_size = std::bit_floor(avail);
  if (heap_size < granule * 4) {
    Fatal("arena '%s' too small for buddy heap", arena.name().c_str());
  }

  h->map_off = static_cast<std::uint32_t>(sizeof(Header));
  std::size_t heap_off = sizeof(Header) + map_bytes;
  heap_off = (heap_off + granule - 1) / granule * granule;
  h->heap_off = static_cast<std::uint32_t>(heap_off);
  h->heap_size = static_cast<std::uint32_t>(heap_size);
  h->top_order = std::bit_width(heap_size) - 1;
  for (auto& head : h->free_head) head = kNull;

  std::memset(order_map(), kInterior, map_bytes);
  arena_->MarkDirty(h, sizeof(Header));
  arena_->MarkDirty(order_map(), map_bytes);
  PushFree(0, h->top_order);
}

BuddyAllocator::Header* BuddyAllocator::header() {
  return reinterpret_cast<Header*>(arena_->base());
}
const BuddyAllocator::Header* BuddyAllocator::header() const {
  return reinterpret_cast<const Header*>(arena_->base());
}
std::uint8_t* BuddyAllocator::order_map() {
  return reinterpret_cast<std::uint8_t*>(arena_->base() + header()->map_off);
}
std::byte* BuddyAllocator::heap_base() {
  return arena_->base() + header()->heap_off;
}
const std::byte* BuddyAllocator::heap_base() const {
  return arena_->base() + header()->heap_off;
}

std::size_t BuddyAllocator::BlockSizeFor(std::size_t size) {
  return std::size_t{1} << OrderFor(size);
}

void BuddyAllocator::PushFree(std::uint32_t off, int order) {
  auto* h = header();
  auto* blk = reinterpret_cast<FreeBlock*>(heap_base() + off);
  blk->next = h->free_head[order];
  blk->prev = kNull;
  arena_->MarkDirty(blk, sizeof(FreeBlock));
  if (h->free_head[order] != kNull) {
    auto* head = reinterpret_cast<FreeBlock*>(heap_base() + h->free_head[order]);
    head->prev = off;
    arena_->MarkDirty(head, sizeof(FreeBlock));
  }
  h->free_head[order] = off;
  order_map()[off >> kMinOrder] =
      static_cast<std::uint8_t>(order) | kFreeBit;
  arena_->MarkDirty(h, sizeof(Header));
  arena_->MarkDirty(order_map() + (off >> kMinOrder), 1);
}

void BuddyAllocator::RemoveFree(std::uint32_t off, int order) {
  auto* h = header();
  auto* blk = reinterpret_cast<FreeBlock*>(heap_base() + off);
  if (blk->prev != kNull) {
    auto* prev = reinterpret_cast<FreeBlock*>(heap_base() + blk->prev);
    prev->next = blk->next;
    arena_->MarkDirty(prev, sizeof(FreeBlock));
  } else {
    h->free_head[order] = blk->next;
    arena_->MarkDirty(h, sizeof(Header));
  }
  if (blk->next != kNull) {
    auto* next = reinterpret_cast<FreeBlock*>(heap_base() + blk->next);
    next->prev = blk->prev;
    arena_->MarkDirty(next, sizeof(FreeBlock));
  }
}

std::uint32_t BuddyAllocator::PopFree(int order) {
  auto* h = header();
  std::uint32_t off = h->free_head[order];
  if (off != kNull) RemoveFree(off, order);
  return off;
}

void* BuddyAllocator::Alloc(std::size_t size) {
  auto* h = header();
  h->stats.alloc_calls++;
  arena_->MarkDirty(h, sizeof(Header));
  if (size == 0) size = 1;
  const int want = OrderFor(size);
  if (want > h->top_order) {
    h->stats.failed_allocs++;
    return nullptr;
  }
  // Find the smallest free block that fits.
  int order = want;
  while (order <= h->top_order && h->free_head[order] == kNull) ++order;
  if (order > h->top_order) {
    h->stats.failed_allocs++;
    return nullptr;
  }
  std::uint32_t off = PopFree(order);
  // Split down to the requested order, pushing the upper halves free.
  while (order > want) {
    --order;
    PushFree(off + (1u << order), order);
  }
  order_map()[off >> kMinOrder] = static_cast<std::uint8_t>(want);
  h->stats.bytes_in_use += (std::uint64_t{1} << want);
  if (h->stats.bytes_in_use > h->stats.bytes_peak) {
    h->stats.bytes_peak = h->stats.bytes_in_use;
  }
  arena_->MarkDirty(order_map() + (off >> kMinOrder), 1);
  // The caller owns the returned block and will write into it without any
  // marking seam of its own; flag the whole range up front.
  arena_->MarkDirty(heap_base() + off, std::size_t{1} << want);
  return heap_base() + off;
}

void* BuddyAllocator::AllocZeroed(std::size_t size) {
  void* p = Alloc(size);
  if (p != nullptr) std::memset(p, 0, BlockSizeFor(size));
  return p;
}

void BuddyAllocator::Free(void* ptr) {
  if (ptr == nullptr) return;
  auto* h = header();
  h->stats.free_calls++;
  arena_->MarkDirty(h, sizeof(Header));
  if (!arena_->Contains(ptr)) {
    Fatal("BuddyAllocator::Free of pointer outside arena '%s'",
          arena_->name().c_str());
  }
  auto off = static_cast<std::uint32_t>(static_cast<std::byte*>(ptr) -
                                        heap_base());
  std::uint8_t tag = order_map()[off >> kMinOrder];
  if (tag == kInterior || (tag & kFreeBit) != 0) {
    Fatal("BuddyAllocator::Free of invalid/double-freed block at +%u in '%s'",
          off, arena_->name().c_str());
  }
  int order = tag;
  h->stats.bytes_in_use -= (std::uint64_t{1} << order);
  order_map()[off >> kMinOrder] = kInterior;
  arena_->MarkDirty(order_map() + (off >> kMinOrder), 1);
  // Coalesce with the buddy as long as it is free and the same order.
  while (order < h->top_order) {
    const std::uint32_t buddy = off ^ (1u << order);
    const std::uint8_t btag = order_map()[buddy >> kMinOrder];
    if (btag != (static_cast<std::uint8_t>(order) | kFreeBit)) break;
    RemoveFree(buddy, order);
    order_map()[buddy >> kMinOrder] = kInterior;
    arena_->MarkDirty(order_map() + (buddy >> kMinOrder), 1);
    off = off < buddy ? off : buddy;
    ++order;
  }
  PushFree(off, order);
}

AllocStats BuddyAllocator::Stats() const { return header()->stats; }

std::size_t BuddyAllocator::HeapSize() const { return header()->heap_size; }

std::size_t BuddyAllocator::LargestFreeBlock() const {
  const auto* h = header();
  for (int order = h->top_order; order >= kMinOrder; --order) {
    if (h->free_head[order] != kNull) return std::size_t{1} << order;
  }
  return 0;
}

std::size_t BuddyAllocator::TotalFreeBytes() const {
  const auto* h = header();
  std::size_t total = 0;
  for (int order = kMinOrder; order <= h->top_order; ++order) {
    std::uint32_t off = h->free_head[order];
    while (off != kNull) {
      total += std::size_t{1} << order;
      off = reinterpret_cast<const FreeBlock*>(heap_base() + off)->next;
    }
  }
  return total;
}

}  // namespace vampos::mem
