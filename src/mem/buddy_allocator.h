// Binary buddy allocator modeled on Unikraft's ukallocbuddy.
//
// All allocator state — free-list heads, per-block order map, statistics —
// lives *inside* the arena it manages, so a component checkpoint is a single
// byte copy of the arena and a restore rolls the allocator back too. That is
// what gives VampOS its rejuvenation effect: memory leaked or fragmented
// after the post-init checkpoint is reclaimed wholesale by the restore.
#pragma once

#include <cstddef>
#include <cstdint>

#include "mem/arena.h"

namespace vampos::mem {

struct AllocStats {
  std::uint64_t bytes_in_use = 0;   // sum of rounded block sizes handed out
  std::uint64_t bytes_peak = 0;
  std::uint64_t alloc_calls = 0;
  std::uint64_t free_calls = 0;
  std::uint64_t failed_allocs = 0;
};

class BuddyAllocator {
 public:
  /// Formats the arena: writes the allocator header, order map, and seeds the
  /// free lists. Destroys any previous content.
  explicit BuddyAllocator(Arena& arena);

  /// Attaches to an arena that is already formatted (e.g. after a snapshot
  /// restore). Validates the header magic.
  static BuddyAllocator Attach(Arena& arena);

  BuddyAllocator(const BuddyAllocator&) = delete;
  BuddyAllocator& operator=(const BuddyAllocator&) = delete;
  BuddyAllocator(BuddyAllocator&&) = default;

  /// Allocates at least `size` bytes (64-byte minimum granule). Returns
  /// nullptr on exhaustion; callers on component paths convert that into an
  /// AllocFailure fault.
  [[nodiscard]] void* Alloc(std::size_t size);
  [[nodiscard]] void* AllocZeroed(std::size_t size);
  void Free(void* ptr);

  /// Rounded block size that Alloc(size) would consume.
  [[nodiscard]] static std::size_t BlockSizeFor(std::size_t size);

  [[nodiscard]] AllocStats Stats() const;
  [[nodiscard]] std::size_t HeapSize() const;
  /// Size of the largest block Alloc could currently satisfy; the gap between
  /// this and total free bytes is the fragmentation signal used by the aging
  /// experiments.
  [[nodiscard]] std::size_t LargestFreeBlock() const;
  [[nodiscard]] std::size_t TotalFreeBytes() const;

  [[nodiscard]] Arena& arena() { return *arena_; }

  static constexpr int kMinOrder = 6;  // 64-byte granule
  static constexpr int kMaxOrders = 28;

 private:
  struct Header;
  struct FreeBlock;

  BuddyAllocator(Arena& arena, bool attach);

  Header* header();
  const Header* header() const;
  std::uint8_t* order_map();
  std::byte* heap_base();
  const std::byte* heap_base() const;

  void PushFree(std::uint32_t off, int order);
  void RemoveFree(std::uint32_t off, int order);
  std::uint32_t PopFree(int order);

  Arena* arena_;
};

}  // namespace vampos::mem
