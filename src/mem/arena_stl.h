// STL allocator adaptor over BuddyAllocator plus container aliases.
//
// Component state must live entirely inside the component's arena so that a
// checkpoint restore is complete and self-consistent. Components therefore
// use these aliases (mem::vector, mem::string, mem::map, ...) for any
// dynamically sized state instead of the global-heap std:: defaults.
#pragma once

#include <deque>
#include <map>
#include <scoped_allocator>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/panic.h"
#include "mem/buddy_allocator.h"

namespace vampos::mem {

template <typename T>
class ArenaStl {
 public:
  using value_type = T;

  explicit ArenaStl(BuddyAllocator* alloc) noexcept : alloc_(alloc) {}
  template <typename U>
  ArenaStl(const ArenaStl<U>& other) noexcept : alloc_(other.alloc_) {}

  T* allocate(std::size_t n) {
    void* p = alloc_->Alloc(n * sizeof(T));
    if (p == nullptr) {
      throw ComponentFault(kComponentNone, FaultKind::kAllocFailure,
                           "arena '" + alloc_->arena().name() + "' exhausted");
    }
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept { alloc_->Free(p); }

  template <typename U>
  bool operator==(const ArenaStl<U>& other) const noexcept {
    return alloc_ == other.alloc_;
  }

  BuddyAllocator* alloc_;
};

template <typename T>
using vector = std::vector<T, ArenaStl<T>>;

using string =
    std::basic_string<char, std::char_traits<char>, ArenaStl<char>>;

template <typename K, typename V, typename Cmp = std::less<K>>
using map = std::map<K, V, Cmp, ArenaStl<std::pair<const K, V>>>;

template <typename K, typename V, typename Hash = std::hash<K>>
using unordered_map =
    std::unordered_map<K, V, Hash, std::equal_to<K>,
                       ArenaStl<std::pair<const K, V>>>;

template <typename T>
using deque = std::deque<T, ArenaStl<T>>;

/// Placement-constructs a T inside the arena heap. Pair with DestroyIn.
template <typename T, typename... Args>
T* NewIn(BuddyAllocator& alloc, Args&&... args) {
  void* p = alloc.Alloc(sizeof(T));
  if (p == nullptr) {
    throw ComponentFault(kComponentNone, FaultKind::kAllocFailure,
                         "arena '" + alloc.arena().name() + "' exhausted");
  }
  return new (p) T(std::forward<Args>(args)...);
}

template <typename T>
void DestroyIn(BuddyAllocator& alloc, T* obj) {
  if (obj == nullptr) return;
  obj->~T();
  alloc.Free(obj);
}

}  // namespace vampos::mem
