#include "mem/snapshot.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <thread>

#include "base/panic.h"

namespace vampos::mem {

namespace {

constexpr std::size_t kPage = Arena::kPageSize;

/// Mixes one 64-bit lane into the running hash. xor-multiply keeps the
/// chain positionally sensitive (swapping two lanes changes the result).
inline std::uint64_t MixLane(std::uint64_t h, std::uint64_t lane) {
  h ^= lane;
  h *= 0x100000001b3ull;  // FNV-1a prime, applied to 8-byte lanes
  return h;
}

/// splitmix64 finalizer: avalanches the lane chain so single-bit page
/// differences flip about half the hash bits.
inline std::uint64_t Finalize(std::uint64_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

/// Hashes pages [first, first+count) of `base` into hashes/zeros. Runs on
/// snapshot hash workers: may touch only its arguments and the hash seam.
void HashRange(const std::byte* base, std::size_t first, std::size_t count,
               std::uint64_t* hashes, std::uint8_t* zeros) VAMP_POOL_ENTRY {
  for (std::size_t i = first; i < first + count; ++i) {
    bool is_zero = false;
    hashes[i] = Snapshot::PageHash(base + i * kPage, &is_zero);
    zeros[i] = is_zero ? 1 : 0;
  }
}

/// Exact all-zeroes check for one page (no hashing involved).
bool IsZeroPage(const std::byte* page) {
  std::uint64_t acc = 0;
  for (std::size_t off = 0; off < kPage; off += sizeof(std::uint64_t)) {
    std::uint64_t lane;
    std::memcpy(&lane, page + off, sizeof(lane));
    acc |= lane;
  }
  return acc == 0;
}

/// Page-hash pass, optionally spread over worker threads. Pages are
/// independent, so the split is a plain range partition; results land in
/// caller-provided arrays and the pass is deterministic regardless of
/// worker count.
void HashPages(const std::byte* base, std::size_t n_pages, int workers,
               std::uint64_t* hashes, std::uint8_t* zeros) {
  const auto requested = static_cast<std::size_t>(workers > 1 ? workers : 1);
  // Below a few hundred pages the thread spawn costs more than the hashing.
  constexpr std::size_t kMinPagesPerWorker = 64;
  const std::size_t usable =
      std::min(requested, std::max<std::size_t>(1, n_pages /
                                                       kMinPagesPerWorker));
  if (usable <= 1) {
    HashRange(base, 0, n_pages, hashes, zeros);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(usable);
  const std::size_t chunk = (n_pages + usable - 1) / usable;
  for (std::size_t w = 0; w < usable; ++w) {
    const std::size_t first = w * chunk;
    if (first >= n_pages) break;
    const std::size_t count = std::min(chunk, n_pages - first);
    threads.emplace_back(HashRange, base, first, count, hashes, zeros);
  }
  for (std::thread& t : threads) t.join();
}

inline Nanos NowOrZero(const Clock* clock) {
  return clock != nullptr ? clock->Now() : 0;
}

}  // namespace

std::uint64_t Snapshot::HashPage(const std::byte* page, bool* is_zero) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  std::uint64_t acc = 0;
  for (std::size_t off = 0; off < kPage; off += sizeof(std::uint64_t)) {
    std::uint64_t lane;
    std::memcpy(&lane, page + off, sizeof(lane));
    acc |= lane;
    h = MixLane(h, lane);
  }
  if (is_zero != nullptr) *is_zero = acc == 0;
  return Finalize(h);
}

Snapshot::PageHashFn Snapshot::hash_override_ = nullptr;

std::uint64_t Snapshot::PageHash(const std::byte* page, bool* is_zero) {
  return hash_override_ != nullptr ? hash_override_(page, is_zero)
                                   : HashPage(page, is_zero);
}

Snapshot::PageHashFn Snapshot::SetPageHashForTest(PageHashFn fn) {
  PageHashFn prev = hash_override_;
  hash_override_ = fn;
  return prev;
}

const DirtyTracker* Snapshot::SyncedTracker(const Arena& arena,
                                            const SnapshotConfig& config) const {
  if (!config.dirty_tracking) return nullptr;
  const DirtyTracker* t = arena.dirty_tracker();
  if (t == nullptr || t != synced_tracker_ || t->generation() != synced_gen_) {
    return nullptr;
  }
  return t;
}

void Snapshot::MarkTrackerSynced(const Arena& arena,
                                 const SnapshotConfig& config) const {
  if (!config.dirty_tracking) return;
  DirtyTracker* t = arena.dirty_tracker();
  if (t == nullptr) return;
  t->Clear();
  synced_tracker_ = t;
  synced_gen_ = t->generation();
}

// ------------------------------------------------------------ PageBaseline

const std::byte* PageBaseline::Intern(const std::byte* page,
                                      std::uint64_t hash, bool* reused) {
  auto& chain = pool_[hash];
  for (const auto& pooled : chain) {
    if (std::memcmp(pooled.get(), page, kPage) == 0) {
      hits_++;
      if (reused != nullptr) *reused = true;
      return pooled.get();
    }
  }
  auto copy = std::make_unique<std::byte[]>(kPage);
  std::memcpy(copy.get(), page, kPage);
  chain.push_back(std::move(copy));
  pooled_++;
  if (reused != nullptr) *reused = false;
  return chain.back().get();
}

// ---------------------------------------------------------------- Snapshot

Snapshot Snapshot::Capture(const Arena& arena) {
  Snapshot snap;
  snap.mode_ = SnapshotMode::kFullCopy;
  snap.bytes_.resize(arena.size());
  std::memcpy(snap.bytes_.data(), arena.base(), arena.size());
  return snap;
}

Snapshot Snapshot::Capture(const Arena& arena, const SnapshotConfig& config,
                           SnapshotStats* stats) {
  SnapshotStats local;
  if (config.mode == SnapshotMode::kFullCopy) {
    const Nanos t0 = NowOrZero(config.clock);
    Snapshot snap = Capture(arena);
    local.pages_total = arena.size() / kPage;
    local.pages_dirty = local.pages_total;
    local.bytes_copied = arena.size();
    local.copy_ns = NowOrZero(config.clock) - t0;
    if (stats != nullptr) *stats = local;
    return snap;
  }

  Snapshot snap;
  snap.mode_ = SnapshotMode::kIncremental;
  snap.logical_bytes_ = arena.size();
  const std::size_t n = arena.size() / kPage;
  snap.pages_.resize(n);
  local.pages_total = n;

  std::vector<std::uint64_t> hashes(n);
  std::vector<std::uint8_t> zeros(n);
  const Nanos t0 = NowOrZero(config.clock);
  HashPages(arena.base(), n, config.workers, hashes.data(), zeros.data());
  const Nanos t1 = NowOrZero(config.clock);
  local.hash_ns = t1 - t0;

  for (std::size_t i = 0; i < n; ++i) {
    PageEntry& e = snap.pages_[i];
    e.hash = hashes[i];
    if (zeros[i] != 0) {
      e.src = PageSource::kZero;
      local.pages_zero++;
      continue;
    }
    const std::byte* page = arena.base() + i * kPage;
    if (config.baseline != nullptr) {
      bool reused = false;
      e.shared = config.baseline->Intern(page, hashes[i], &reused);
      e.src = PageSource::kBaseline;
      if (reused) {
        local.pages_shared++;
      } else {
        local.pages_dirty++;
        local.bytes_copied += kPage;
      }
    } else {
      std::memcpy(snap.WritablePage(i), page, kPage);
      local.pages_dirty++;
      local.bytes_copied += kPage;
    }
  }
  local.copy_ns = NowOrZero(config.clock) - t1;
  // Checkpoint now equals the arena: start a fresh dirty window.
  snap.MarkTrackerSynced(arena, config);
  if (stats != nullptr) *stats = local;
  return snap;
}

Status Snapshot::Recapture(const Arena& arena, const SnapshotConfig& config,
                           SnapshotStats* stats) {
  if (empty()) {
    *this = Capture(arena, config, stats);
    return Status::Ok();
  }
  if (size_bytes() != arena.size()) {
    return Status::Error(Errno::kInval,
                         "Snapshot::Recapture size mismatch: snapshot " +
                             std::to_string(size_bytes()) + " vs arena '" +
                             arena.name() + "' " +
                             std::to_string(arena.size()));
  }
  SnapshotStats local;
  if (mode_ == SnapshotMode::kFullCopy) {
    const Nanos t0 = NowOrZero(config.clock);
    std::memcpy(bytes_.data(), arena.base(), arena.size());
    local.pages_total = arena.size() / kPage;
    local.pages_dirty = local.pages_total;
    local.bytes_copied = arena.size();
    local.copy_ns = NowOrZero(config.clock) - t0;
    if (stats != nullptr) *stats = local;
    return Status::Ok();
  }

  const std::size_t n = pages_.size();
  local.pages_total = n;

  // Exact clean test for one page against the checkpoint entry — byte-wise,
  // never a bare hash comparison (64-bit collisions alias divergent pages).
  auto page_clean = [&](std::size_t i) {
    const PageEntry& e = pages_[i];
    const std::byte* live = arena.base() + i * kPage;
    if (e.src == PageSource::kZero) return IsZeroPage(live);
    return std::memcmp(live, PageData(i), kPage) == 0;
  };
  // Re-stores page `i` from the live arena; e.hash must already be updated.
  auto store_page = [&](std::size_t i, std::uint64_t hash, bool now_zero) {
    PageEntry& e = pages_[i];
    local.pages_dirty++;
    e.hash = hash;
    if (now_zero) {
      ReleasePage(i);
      local.pages_zero++;
      return;
    }
    // Dirtied pages go to private storage: live mutated state is unlikely
    // to be shared across components, so it skips the baseline pool.
    std::memcpy(WritablePage(i), arena.base() + i * kPage, kPage);
    local.bytes_copied += kPage;
  };
  auto count_clean = [&](std::size_t i) {
    const PageEntry& e = pages_[i];
    if (e.src == PageSource::kZero) local.pages_zero++;
    if (e.src == PageSource::kBaseline) local.pages_shared++;
  };

  const DirtyTracker* tracker = SyncedTracker(arena, config);
  const bool audit = tracker != nullptr &&
                     arena.dirty_tracker()->RollAudit(config.audit_rate);
  if (tracker != nullptr && !audit) {
    // Fast path: only pages with a dirty bit are even read. A flagged page
    // whose bytes still match the checkpoint (e.g. allocator metadata that
    // round-tripped) costs one memcmp; a changed page is re-hashed and
    // re-stored.
    local.dirty_fast = true;
    const Nanos t0 = NowOrZero(config.clock);
    for (std::size_t i = 0; i < n; ++i) {
      if (!tracker->Test(i)) {
        local.pages_skipped++;
        count_clean(i);
        continue;
      }
      if (page_clean(i)) {
        count_clean(i);
        continue;
      }
      bool now_zero = false;
      const std::uint64_t h = PageHash(arena.base() + i * kPage, &now_zero);
      store_page(i, h, now_zero);
    }
    local.copy_ns = NowOrZero(config.clock) - t0;
  } else {
    // Full hash scan: either dirty tracking is off/desynced, or a sampled
    // audit deliberately re-scans everything to catch untracked writes.
    std::vector<std::uint64_t> hashes(n);
    std::vector<std::uint8_t> zeros(n);
    const Nanos t0 = NowOrZero(config.clock);
    HashPages(arena.base(), n, config.workers, hashes.data(), zeros.data());
    const Nanos t1 = NowOrZero(config.clock);
    local.hash_ns = t1 - t0;
    local.audited = audit;

    for (std::size_t i = 0; i < n; ++i) {
      const PageEntry& e = pages_[i];
      const bool now_zero = zeros[i] != 0;
      const bool was_zero = e.src == PageSource::kZero;
      if (hashes[i] == e.hash && now_zero == was_zero && page_clean(i)) {
        count_clean(i);
        continue;  // clean page: the checkpoint already holds these bytes
      }
      if (audit && !tracker->Test(i)) {
        local.audit_misses++;
        if (config.audit_fail_stop) {
          Fatal("snapshot audit: page %zu of arena '%s' changed without a "
                "dirty bit (untracked write)",
                i, arena.name().c_str());
        }
      }
      store_page(i, hashes[i], now_zero);
    }
    local.copy_ns = NowOrZero(config.clock) - t1;
  }
  // Checkpoint now equals the arena again: consume the bits and open a
  // fresh dirty window.
  MarkTrackerSynced(arena, config);
  if (stats != nullptr) *stats = local;
  return Status::Ok();
}

Status Snapshot::Restore(Arena& arena, const SnapshotConfig& config,
                         SnapshotStats* stats) const {
  if (size_bytes() != arena.size()) {
    return Status::Error(Errno::kInval,
                         "Snapshot::Restore size mismatch: snapshot " +
                             std::to_string(size_bytes()) + " vs arena '" +
                             arena.name() + "' " +
                             std::to_string(arena.size()));
  }
  SnapshotStats local;
  if (mode_ == SnapshotMode::kFullCopy) {
    const Nanos t0 = NowOrZero(config.clock);
    std::memcpy(arena.base(), bytes_.data(), bytes_.size());
    local.pages_total = bytes_.size() / kPage;
    local.pages_dirty = local.pages_total;
    local.bytes_copied = bytes_.size();
    local.copy_ns = NowOrZero(config.clock) - t0;
    if (stats != nullptr) *stats = local;
    return Status::Ok();
  }

  const std::size_t n = pages_.size();
  local.pages_total = n;

  // Byte-exact divergence test (never a bare hash comparison — a live page
  // whose hash collides with the checkpoint entry must still be restored).
  auto page_clean = [&](std::size_t i) {
    const PageEntry& e = pages_[i];
    const std::byte* live = arena.base() + i * kPage;
    if (e.src == PageSource::kZero) return IsZeroPage(live);
    return std::memcmp(live, PageData(i), kPage) == 0;
  };
  auto restore_page = [&](std::size_t i) {
    const PageEntry& e = pages_[i];
    local.pages_dirty++;
    std::byte* dst = arena.base() + i * kPage;
    if (e.src == PageSource::kZero) {
      std::memset(dst, 0, kPage);
    } else {
      std::memcpy(dst, PageData(i), kPage);
    }
    local.bytes_copied += kPage;
  };

  const DirtyTracker* tracker = SyncedTracker(arena, config);
  const bool audit = tracker != nullptr &&
                     arena.dirty_tracker()->RollAudit(config.audit_rate);
  if (tracker != nullptr && !audit) {
    // Fast path: unflagged pages are untouched since the last sync, so the
    // live bytes already match the checkpoint. No hashing at all — flagged
    // pages are memcmp'd and only true divergence is copied.
    local.dirty_fast = true;
    const Nanos t0 = NowOrZero(config.clock);
    for (std::size_t i = 0; i < n; ++i) {
      if (!tracker->Test(i)) {
        local.pages_skipped++;
        continue;
      }
      if (!page_clean(i)) restore_page(i);
    }
    local.copy_ns = NowOrZero(config.clock) - t0;
  } else {
    std::vector<std::uint64_t> hashes(n);
    std::vector<std::uint8_t> zeros(n);
    const Nanos t0 = NowOrZero(config.clock);
    HashPages(arena.base(), n, config.workers, hashes.data(), zeros.data());
    const Nanos t1 = NowOrZero(config.clock);
    local.hash_ns = t1 - t0;
    local.audited = audit;

    for (std::size_t i = 0; i < n; ++i) {
      const PageEntry& e = pages_[i];
      const bool live_zero = zeros[i] != 0;
      const bool snap_zero = e.src == PageSource::kZero;
      if (hashes[i] == e.hash && live_zero == snap_zero && page_clean(i)) {
        continue;  // clean
      }
      if (audit && !tracker->Test(i)) {
        local.audit_misses++;
        if (config.audit_fail_stop) {
          Fatal("snapshot audit: page %zu of arena '%s' changed without a "
                "dirty bit (untracked write)",
                i, arena.name().c_str());
        }
      }
      restore_page(i);
    }
    local.copy_ns = NowOrZero(config.clock) - t1;
  }
  // The live arena now equals the checkpoint: consume the bits and open a
  // fresh dirty window.
  MarkTrackerSynced(arena, config);
  if (stats != nullptr) *stats = local;
  return Status::Ok();
}

std::size_t Snapshot::size_bytes() const {
  return mode_ == SnapshotMode::kFullCopy ? bytes_.size() : logical_bytes_;
}

std::size_t Snapshot::stored_bytes() const {
  if (mode_ == SnapshotMode::kFullCopy) return bytes_.size();
  return (private_pages_.size() - free_slots_.size()) * kPage;
}

const std::byte* Snapshot::PageData(std::size_t i) const {
  const PageEntry& e = pages_[i];
  switch (e.src) {
    case PageSource::kZero: return nullptr;
    case PageSource::kBaseline: return e.shared;
    case PageSource::kPrivate: return private_pages_[e.slot].get();
  }
  return nullptr;
}

std::byte* Snapshot::WritablePage(std::size_t i) {
  PageEntry& e = pages_[i];
  if (e.src == PageSource::kPrivate) return private_pages_[e.slot].get();
  e.shared = nullptr;
  if (!free_slots_.empty()) {
    e.slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    e.slot = static_cast<std::uint32_t>(private_pages_.size());
    private_pages_.push_back(std::make_unique<std::byte[]>(kPage));
  }
  e.src = PageSource::kPrivate;
  return private_pages_[e.slot].get();
}

void Snapshot::ReleasePage(std::size_t i) {
  PageEntry& e = pages_[i];
  if (e.src == PageSource::kPrivate) free_slots_.push_back(e.slot);
  e.src = PageSource::kZero;
  e.shared = nullptr;
  e.slot = 0;
}

}  // namespace vampos::mem
