#include "mem/snapshot.h"

#include <cstring>

#include "base/panic.h"

namespace vampos::mem {

Snapshot Snapshot::Capture(const Arena& arena) {
  Snapshot snap;
  snap.bytes_.resize(arena.size());
  std::memcpy(snap.bytes_.data(), arena.base(), arena.size());
  return snap;
}

void Snapshot::Restore(Arena& arena) const {
  if (bytes_.size() != arena.size()) {
    Fatal("Snapshot::Restore size mismatch: snapshot %zu vs arena '%s' %zu",
          bytes_.size(), arena.name().c_str(), arena.size());
  }
  std::memcpy(arena.base(), bytes_.data(), bytes_.size());
}

}  // namespace vampos::mem
