// Fixed-address memory region backing one component's data/heap/stack.
//
// Everything a component owns lives inside its arena: allocator metadata,
// static state, heap objects. Because the arena never moves for the lifetime
// of the runtime, a checkpoint restore is a plain byte copy back into the
// same addresses and every internal pointer stays valid — the in-process
// analogue of the paper's QEMU component-unit memory snapshots.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace vampos::mem {

class Arena {
 public:
  /// Creates an arena of `size` bytes (rounded up to 4 KiB), zero-filled.
  explicit Arena(std::size_t size, std::string name = "arena");

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  [[nodiscard]] std::byte* base() { return storage_.get(); }
  [[nodiscard]] const std::byte* base() const { return storage_.get(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// True if [ptr, ptr+len) lies fully inside this arena.
  [[nodiscard]] bool Contains(const void* ptr, std::size_t len = 1) const {
    auto p = reinterpret_cast<std::uintptr_t>(ptr);
    auto b = reinterpret_cast<std::uintptr_t>(storage_.get());
    return p >= b && p + len <= b + size_;
  }

  /// Byte offset of an in-arena pointer.
  [[nodiscard]] std::size_t OffsetOf(const void* ptr) const {
    return static_cast<std::size_t>(static_cast<const std::byte*>(ptr) -
                                    storage_.get());
  }

  [[nodiscard]] void* AtOffset(std::size_t off) { return storage_.get() + off; }

  static constexpr std::size_t kPageSize = 4096;

 private:
  std::size_t size_;
  std::string name_;
  std::unique_ptr<std::byte[]> storage_;
};

}  // namespace vampos::mem
