// Fixed-address memory region backing one component's data/heap/stack.
//
// Everything a component owns lives inside its arena: allocator metadata,
// static state, heap objects. Because the arena never moves for the lifetime
// of the runtime, a checkpoint restore is a plain byte copy back into the
// same addresses and every internal pointer stays valid — the in-process
// analogue of the paper's QEMU component-unit memory snapshots.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "mem/dirty_tracker.h"

namespace vampos::mem {

class Arena {
 public:
  /// Creates an arena of `size` bytes (rounded up to 4 KiB), zero-filled.
  explicit Arena(std::size_t size, std::string name = "arena");

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  [[nodiscard]] std::byte* base() { return storage_.get(); }
  [[nodiscard]] const std::byte* base() const { return storage_.get(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// True if [ptr, ptr+len) lies fully inside this arena.
  [[nodiscard]] bool Contains(const void* ptr, std::size_t len = 1) const {
    auto p = reinterpret_cast<std::uintptr_t>(ptr);
    auto b = reinterpret_cast<std::uintptr_t>(storage_.get());
    return p >= b && p + len <= b + size_;
  }

  /// Byte offset of an in-arena pointer.
  [[nodiscard]] std::size_t OffsetOf(const void* ptr) const {
    return static_cast<std::size_t>(static_cast<const std::byte*>(ptr) -
                                    storage_.get());
  }

  [[nodiscard]] void* AtOffset(std::size_t off) { return storage_.get() + off; }

  /// Attaches a write-time dirty-page tracker (idempotent). The tracker
  /// starts saturated: everything that happened before tracking began is
  /// conservatively dirty until the first snapshot synchronization clears it.
  void EnableDirtyTracking();

  /// The attached tracker, or nullptr when tracking is off.
  [[nodiscard]] DirtyTracker* dirty_tracker() const { return tracker_.get(); }

  /// Flags the pages covering [ptr, ptr+len) as dirty. No-op when tracking
  /// is off or the range falls outside the arena, so write paths can call
  /// it unconditionally. Const because marking is bookkeeping about arena
  /// content, not a mutation of it.
  void MarkDirty(const void* ptr, std::size_t len) const {
    if (tracker_ == nullptr || len == 0) return;
    if (!Contains(ptr, len)) return;
    tracker_->Mark(OffsetOf(ptr), len);
  }

  /// Conservative whole-arena taint for writes that bypass the sanctioned
  /// marking paths. No-op when tracking is off.
  void TaintAll() const {
    if (tracker_ != nullptr) tracker_->MarkAll();
  }

  /// Content generation. Bumped whenever the arena's bytes are replaced
  /// wholesale (checkpoint restore, re-Init): zero-copy views borrowed
  /// against an older generation must fault instead of silently reading
  /// the restored image.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }
  void BumpGeneration() { generation_++; }

  static constexpr std::size_t kPageSize = 4096;

 private:
  std::size_t size_;
  std::string name_;
  std::unique_ptr<std::byte[]> storage_;
  std::unique_ptr<DirtyTracker> tracker_;
  std::uint64_t generation_ = 1;
};

}  // namespace vampos::mem
