// Minimal diagnostic logging for the runtime itself (distinct from the
// function-call logs used for restoration). Off by default; enabled per run
// via SetDiagLevel or the VAMPOS_DIAG environment variable.
#pragma once

#include <cstdio>
#include <utility>

namespace vampos {

enum class DiagLevel : int { kOff = 0, kError = 1, kInfo = 2, kTrace = 3 };

DiagLevel GetDiagLevel();
void SetDiagLevel(DiagLevel level);

namespace detail {
void DiagPrintf(DiagLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
}  // namespace detail

#define VAMPOS_DIAG(level, ...)                                     \
  do {                                                              \
    if (static_cast<int>(::vampos::GetDiagLevel()) >=               \
        static_cast<int>(level)) {                                  \
      ::vampos::detail::DiagPrintf(level, __VA_ARGS__);             \
    }                                                               \
  } while (0)

#define VAMPOS_ERROR(...) VAMPOS_DIAG(::vampos::DiagLevel::kError, __VA_ARGS__)
#define VAMPOS_INFO(...) VAMPOS_DIAG(::vampos::DiagLevel::kInfo, __VA_ARGS__)
#define VAMPOS_TRACE(...) VAMPOS_DIAG(::vampos::DiagLevel::kTrace, __VA_ARGS__)

}  // namespace vampos
