// Component fault types. A fault unwinds the faulting fiber's stack back to
// the scheduler, which marks the component failed and hands control to the
// message thread's reboot path — the software analogue of the paper's
// "illegal memory accesses and panic() invocations transfer the control to
// error handlers and trigger the reboot".
#pragma once

#include <exception>
#include <string>
#include <utility>

#include "base/types.h"

namespace vampos {

/// Classifies why a component failed; drives recovery policy (e.g. VIRTIO
/// refuses reboots, deterministic faults re-trigger and fail-stop).
enum class FaultKind {
  kPanic,          // explicit panic() by component code
  kMpkViolation,   // cross-domain memory access caught by the MPK simulator
  kHang,           // message processing exceeded the hang threshold
  kAllocFailure,   // component heap exhausted (aging / leak)
  kInjected,       // test-injected fail-stop
  kDeadlock,       // reply wait-for cycle caught by the isolation checker
  kCorruptCheckpoint,  // checkpoint image damaged before the fault fires
};

inline const char* ToString(FaultKind k) {
  switch (k) {
    case FaultKind::kPanic: return "panic";
    case FaultKind::kMpkViolation: return "mpk-violation";
    case FaultKind::kHang: return "hang";
    case FaultKind::kAllocFailure: return "alloc-failure";
    case FaultKind::kInjected: return "injected";
    case FaultKind::kDeadlock: return "deadlock";
    case FaultKind::kCorruptCheckpoint: return "corrupt-checkpoint";
  }
  return "unknown";
}

/// Thrown inside a component fiber on fail-stop. Caught only by the fiber
/// trampoline; never escapes into another component's stack (isolation).
class ComponentFault : public std::exception {
 public:
  ComponentFault(ComponentId component, FaultKind kind, std::string detail)
      : component_(component), kind_(kind), detail_(std::move(detail)) {
    what_ = std::string("component fault [") + ToString(kind_) + "]: " + detail_;
  }

  [[nodiscard]] ComponentId component() const { return component_; }
  [[nodiscard]] FaultKind kind() const { return kind_; }
  [[nodiscard]] const std::string& detail() const { return detail_; }
  [[nodiscard]] const char* what() const noexcept override { return what_.c_str(); }

 private:
  ComponentId component_;
  FaultKind kind_;
  std::string detail_;
  std::string what_;
};

/// panic() equivalent for component code. Always throws.
[[noreturn]] void Panic(ComponentId component, std::string detail);

/// Fatal error in the runtime itself (not a component fault): aborts.
[[noreturn]] void Fatal(const char* fmt, ...);

}  // namespace vampos
