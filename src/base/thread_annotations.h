// Thread-ownership annotations for the concurrent-recovery boundary
// (DESIGN.md §8). The macros expand to nothing — they are read textually by
// `vampcheck ownership` (tools/vampcheck), which flags any
// VAMP_MSG_THREAD_ONLY member touched from code reachable from a
// VAMP_POOL_ENTRY function or a RecoveryPool Submit() task, and any
// VAMP_GUARDED_BY member touched in a function that takes no visible lock
// on the named mutex.
//
//   std::vector<Slot> slots_ VAMP_MSG_THREAD_ONLY;
//   int active_ VAMP_GUARDED_BY(mu_) = 0;
//   std::atomic<bool> restore_done VAMP_RECOVERY_POOL_SHARED{false};
//   void Run() VAMP_POOL_ENTRY { ... }
//
// Member annotations sit after the member name (before any initializer);
// VAMP_POOL_ENTRY sits between the parameter list and the function body.
// VAMP_RECOVERY_POOL_SHARED documents state that deliberately crosses the
// boundary — it must be atomic or published under a mutex; the lint exempts
// it rather than checks it (TSan covers the dynamic side).
#pragma once

#define VAMP_MSG_THREAD_ONLY
#define VAMP_RECOVERY_POOL_SHARED
#define VAMP_GUARDED_BY(mutex)
#define VAMP_POOL_ENTRY
