// Core identifier and error types shared by every VampOS module.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace vampos {

/// Identifies a component instance within one runtime. Dense, assigned at
/// registration time; kComponentNone means "no component" (e.g. the
/// application context or the message thread).
using ComponentId = std::int32_t;
inline constexpr ComponentId kComponentNone = -1;

/// Identifies an exported function on a component interface. Unique per
/// runtime (allocated by the interface registry), stable across reboots of
/// the component so logs remain replayable.
using FunctionId = std::int32_t;

/// Monotonic sequence number for log entries inside one message domain.
using LogSeq = std::uint64_t;

/// POSIX-style error codes surfaced through the syscall facade. Negative
/// values are errors, non-negative are success payloads (fd numbers, byte
/// counts, ...), mirroring the kernel ABI the paper's components expose.
enum class Errno : int {
  kOk = 0,
  kNoEnt = 2,
  kIo = 5,
  kBadF = 9,
  kAgain = 11,
  kNoMem = 12,
  kFault = 14,
  kExist = 17,
  kNotDir = 20,
  kIsDir = 21,
  kInval = 22,
  kMFile = 24,
  kNoSpc = 28,
  kPipe = 32,
  kNotConn = 107,
  kConnRefused = 111,
};

/// Lightweight status type: either kOk or an Errno with a short message.
/// Cheaper than exceptions on hot syscall paths; exceptions are reserved for
/// component faults (see panic.h).
class Status {
 public:
  Status() = default;
  explicit Status(Errno code, std::string msg = {})
      : code_(code), msg_(std::move(msg)) {}

  static Status Ok() { return Status{}; }
  static Status Error(Errno code, std::string msg = {}) {
    return Status{code, std::move(msg)};
  }

  [[nodiscard]] bool ok() const { return code_ == Errno::kOk; }
  [[nodiscard]] Errno code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return msg_; }

 private:
  Errno code_ = Errno::kOk;
  std::string msg_;
};

/// Result<T>: value or Status. Used by component-internal APIs; the wire
/// format between components flattens this to an errno-style i64.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-*)
  Result(Status status) : v_(std::move(status)) {}  // NOLINT

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(v_); }
  [[nodiscard]] const T& value() const& { return std::get<T>(v_); }
  [[nodiscard]] T&& value() && { return std::get<T>(std::move(v_)); }
  [[nodiscard]] const Status& status() const { return std::get<Status>(v_); }

 private:
  std::variant<T, Status> v_;
};

/// Converts a Result-ish syscall outcome to the flat i64 wire convention:
/// >= 0 payload, < 0 negated errno.
inline std::int64_t ToWire(const Status& s, std::int64_t payload = 0) {
  return s.ok() ? payload : -static_cast<std::int64_t>(s.code());
}
inline bool WireOk(std::int64_t w) { return w >= 0; }
inline Errno WireErrno(std::int64_t w) {
  return w >= 0 ? Errno::kOk : static_cast<Errno>(-w);
}

}  // namespace vampos
