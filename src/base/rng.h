// Deterministic PRNG (splitmix64 + xoshiro256**) used by workload generators
// and fault injectors so experiments are reproducible run-to-run.
#pragma once

#include <array>
#include <cstdint>

namespace vampos {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into 4 lanes.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    for (auto& lane : s_) lane = next();
  }

  std::uint64_t Next() {
    auto rotl = [](std::uint64_t x, int k) {
      return (x << k) | (x >> (64 - k));
    };
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t Below(std::uint64_t bound) { return Next() % bound; }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t Range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(Below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli with probability num/den.
  bool Chance(std::uint64_t num, std::uint64_t den) { return Below(den) < num; }

  double NextDouble() {  // [0,1)
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace vampos
