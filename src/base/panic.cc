#include "base/panic.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace vampos {

void Panic(ComponentId component, std::string detail) {
  throw ComponentFault(component, FaultKind::kPanic, std::move(detail));
}

void Fatal(const char* fmt, ...) {
  std::va_list ap;
  va_start(ap, fmt);
  std::fprintf(stderr, "vampos fatal: ");
  std::vfprintf(stderr, fmt, ap);
  std::fprintf(stderr, "\n");
  va_end(ap);
  std::abort();
}

}  // namespace vampos
