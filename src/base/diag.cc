#include "base/diag.h"

#include <atomic>
#include <cstdarg>
#include <cstdlib>
#include <cstring>

namespace vampos {

namespace {
std::atomic<int> g_level{-1};  // -1 = uninitialized, read from env on first use

int InitLevelFromEnv() {
  const char* env = std::getenv("VAMPOS_DIAG");
  if (env == nullptr) return 0;
  if (std::strcmp(env, "error") == 0) return 1;
  if (std::strcmp(env, "info") == 0) return 2;
  if (std::strcmp(env, "trace") == 0) return 3;
  return std::atoi(env);
}
}  // namespace

DiagLevel GetDiagLevel() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level < 0) {
    level = InitLevelFromEnv();
    g_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<DiagLevel>(level);
}

void SetDiagLevel(DiagLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace detail {
void DiagPrintf(DiagLevel level, const char* fmt, ...) {
  static const char* const kTags[] = {"off", "E", "I", "T"};
  std::va_list ap;
  va_start(ap, fmt);
  std::fprintf(stderr, "[vampos:%s] ", kTags[static_cast<int>(level)]);
  std::vfprintf(stderr, fmt, ap);
  std::fprintf(stderr, "\n");
  va_end(ap);
}
}  // namespace detail

}  // namespace vampos
