// Monotonic time helpers. All measurements in the bench harness use
// SteadyClock; the hang detector takes a Clock interface so tests can inject
// a fake clock and trigger hang thresholds without real waiting.
#pragma once

#include <chrono>
#include <cstdint>

namespace vampos {

/// Nanoseconds since an arbitrary epoch, monotonic.
using Nanos = std::int64_t;

class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual Nanos Now() const = 0;
};

/// Real monotonic clock.
class SteadyClock final : public Clock {
 public:
  [[nodiscard]] Nanos Now() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
  static SteadyClock& Instance() {
    static SteadyClock clock;
    return clock;
  }
};

/// Manually advanced clock for deterministic tests.
class FakeClock final : public Clock {
 public:
  [[nodiscard]] Nanos Now() const override { return now_; }
  void Advance(Nanos delta) { now_ += delta; }
  void Set(Nanos t) { now_ = t; }

 private:
  Nanos now_ = 0;
};

/// Busy-waits for `ns` of CPU time. Used by the VIRTIO simulation to model
/// the guest-visible cost of a hypercall / VM exit, so baseline I/O is not
/// artificially free relative to message passing.
inline void SpinFor(Nanos ns) {
  if (ns <= 0) return;
  const Nanos start = SteadyClock::Instance().Now();
  while (SteadyClock::Instance().Now() - start < ns) {
  }
}

inline constexpr Nanos kMicrosecond = 1'000;
inline constexpr Nanos kMillisecond = 1'000'000;
inline constexpr Nanos kSecond = 1'000'000'000;

}  // namespace vampos
