#include "check/isolation_checker.h"

#include <algorithm>
#include <cstring>

#include "base/panic.h"

namespace vampos::check {

void IsolationChecker::RegisterComponentName(ComponentId id,
                                             std::string name) {
  names_[id] = std::move(name);
}

std::string IsolationChecker::NameOf(ComponentId id) const {
  if (id == kComponentNone) return "app";
  if (id == kMessageDomainOwner) return "message-domain";
  auto it = names_.find(id);
  return it != names_.end() ? it->second : "comp" + std::to_string(id);
}

void IsolationChecker::RegisterRegion(ComponentId owner, const void* base,
                                      std::size_t size, std::string label) {
  Region r{reinterpret_cast<std::uintptr_t>(base),
           reinterpret_cast<std::uintptr_t>(base) + size, owner,
           std::move(label)};
  auto it = std::lower_bound(
      regions_.begin(), regions_.end(), r.base,
      [](const Region& a, std::uintptr_t b) { return a.base < b; });
  const Region* clash = nullptr;
  if (it != regions_.end() && it->base < r.end) clash = &*it;
  if (it != regions_.begin() && std::prev(it)->end > r.base) {
    clash = &*std::prev(it);
  }
  if (clash != nullptr) {
    ownership_violations_.push_back(
        "'" + r.label + "' (" + NameOf(owner) + ") overlaps '" +
        clash->label + "' (" + NameOf(clash->owner) + ")");
    if (recorder_ != nullptr) {
      recorder_->Record(obs::EventKind::kOwnershipOverlap,
                        obs::TracePhase::kInstant, owner, clash->owner);
    }
    return;  // keep the map consistent: the first claim wins
  }
  regions_.insert(it, std::move(r));
}

void IsolationChecker::UnregisterRegion(const void* base) {
  const auto b = reinterpret_cast<std::uintptr_t>(base);
  auto it = std::lower_bound(
      regions_.begin(), regions_.end(), b,
      [](const Region& a, std::uintptr_t p) { return a.base < p; });
  if (it != regions_.end() && it->base == b) regions_.erase(it);
}

const IsolationChecker::Region* IsolationChecker::FindRegion(
    std::uintptr_t addr) const {
  auto it = std::upper_bound(
      regions_.begin(), regions_.end(), addr,
      [](std::uintptr_t p, const Region& r) { return p < r.base; });
  if (it == regions_.begin()) return nullptr;
  const Region& r = *std::prev(it);
  return addr < r.end ? &r : nullptr;
}

void IsolationChecker::FlagIfForeignPointer(ComponentId actor,
                                            ComponentId actor_domain,
                                            std::uint64_t word) {
  values_scanned_++;
  const Region* r = FindRegion(static_cast<std::uintptr_t>(word));
  if (r == nullptr || r->owner == actor_domain) return;
  leaks_detected_++;
  if (recorder_ != nullptr) {
    recorder_->Record(obs::EventKind::kPtrLeakDetected,
                      obs::TracePhase::kInstant, actor, r->owner,
                      static_cast<std::int64_t>(word));
  }
  char addr[32];
  std::snprintf(addr, sizeof(addr), "0x%llx",
                static_cast<unsigned long long>(word));
  throw ComponentFault(
      actor, FaultKind::kMpkViolation,
      "cross-domain pointer leak: payload from " + NameOf(actor) +
          " carries " + addr + " into '" + r->label + "' owned by " +
          NameOf(r->owner));
}

void IsolationChecker::ScanPayload(ComponentId actor,
                                   ComponentId actor_domain,
                                   const msg::Args& payload) {
  payload_scans_++;
  for (const msg::MsgValue& v : payload) {
    if (v.is_i64()) {
      FlagIfForeignPointer(actor, actor_domain,
                           static_cast<std::uint64_t>(v.i64()));
    } else if (v.is_u64()) {
      FlagIfForeignPointer(actor, actor_domain, v.u64());
    } else if (v.is_view()) {
      // Borrowed views police lifetime, not content: a view is a sanctioned
      // cross-domain reference (the borrow grant makes it legible), so the
      // sliding-window scan is skipped — part of the zero-copy win. What is
      // checked is that the borrow is still live: a revoked view escaping
      // into a new payload, or one minted against a pre-reboot arena
      // generation, faults here instead of being silently read.
      views_checked_++;
      if (!v.ViewUsable()) {
        borrow_violations_++;
        if (recorder_ != nullptr) {
          recorder_->Record(obs::EventKind::kPtrLeakDetected,
                            obs::TracePhase::kInstant, actor, actor_domain);
        }
        const bool revoked =
            v.view().borrow != nullptr && v.view().borrow->revoked;
        throw ComponentFault(
            actor, FaultKind::kMpkViolation,
            std::string("borrowed view in payload from ") + NameOf(actor) +
                (revoked ? " escaped its revoked borrow window"
                         : " is stale after the lender rebooted"));
      }
    } else if (v.is_bytes()) {
      // Addresses smuggled inside byte buffers (a struct copied wholesale)
      // hide at any alignment: slide an 8-byte window over the payload.
      const std::string& b = v.bytes();
      for (std::size_t off = 0; off + sizeof(std::uint64_t) <= b.size();
           ++off) {
        std::uint64_t word;
        std::memcpy(&word, b.data() + off, sizeof(word));
        FlagIfForeignPointer(actor, actor_domain, word);
      }
    }
  }
}

void IsolationChecker::CheckCallCycle(ComponentId from, ComponentId to) {
  // Would adding from -> to close a cycle? Equivalent: is `from` reachable
  // from `to` through the existing wait edges? Graphs are tiny (one edge per
  // blocked rpc), so a parent-tracking BFS is plenty.
  if (from == kComponentNone || to == kComponentNone) return;
  std::unordered_map<ComponentId, ComponentId> parent;  // node -> predecessor
  std::vector<ComponentId> frontier{to};
  parent[to] = to;
  bool found = from == to;
  while (!found && !frontier.empty()) {
    const ComponentId node = frontier.back();
    frontier.pop_back();
    for (const auto& [rpc, edge] : waits_) {
      (void)rpc;
      if (edge.from != node || parent.contains(edge.to)) continue;
      parent[edge.to] = node;
      if (edge.to == from) {
        found = true;
        break;
      }
      frontier.push_back(edge.to);
    }
  }
  if (!found) return;
  deadlocks_detected_++;
  if (recorder_ != nullptr) {
    recorder_->Record(obs::EventKind::kDeadlockDetected,
                      obs::TracePhase::kInstant, from, to);
  }
  // Reconstruct the cycle from -> to -> ... -> from for the fault message.
  std::vector<ComponentId> path{from};
  for (ComponentId node = from; node != to;) {
    node = parent[node];
    path.push_back(node);
  }
  std::string cycle = NameOf(from);
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    cycle += " -> " + NameOf(*it);
  }
  throw ComponentFault(from, FaultKind::kDeadlock,
                       "message-plane wait-for cycle: " + cycle);
}

void IsolationChecker::AddWait(std::uint64_t rpc_id, ComponentId from,
                               ComponentId to) {
  if (from == kComponentNone) return;  // app fibers never receive calls
  waits_[rpc_id] = WaitEdge{from, to};
}

void IsolationChecker::RemoveWait(std::uint64_t rpc_id) {
  waits_.erase(rpc_id);
}

void IsolationChecker::Dump(std::FILE* out) const {
  std::fprintf(out,
               "  isolation checker: regions=%zu scans=%llu values=%llu "
               "leaks=%llu deadlocks=%llu views=%llu borrow_violations=%llu\n",
               regions_.size(),
               static_cast<unsigned long long>(payload_scans_),
               static_cast<unsigned long long>(values_scanned_),
               static_cast<unsigned long long>(leaks_detected_),
               static_cast<unsigned long long>(deadlocks_detected_),
               static_cast<unsigned long long>(views_checked_),
               static_cast<unsigned long long>(borrow_violations_));
  for (const std::string& v : ownership_violations_) {
    std::fprintf(out, "    ownership violation: %s\n", v.c_str());
  }
  for (const auto& [rpc, edge] : waits_) {
    std::fprintf(out, "    wait rpc %llu: %s -> %s\n",
                 static_cast<unsigned long long>(rpc),
                 NameOf(edge.from).c_str(), NameOf(edge.to).c_str());
  }
}

}  // namespace vampos::check
