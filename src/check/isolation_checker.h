// vampcheck's dynamic prong: runtime isolation and liveness checking for the
// component plane.
//
// The recovery story rests on invariants the runtime otherwise only assumes:
// components interact exclusively through the message domain, no raw pointer
// into a private arena ever escapes its protection domain, and blocking on
// replies cannot deadlock. The IsolationChecker turns each assumption into a
// checked invariant:
//
//   1. Exclusive ownership — a shadow map of every registered arena asserts
//      that each byte belongs to exactly one protection domain (catching
//      overlapping DomainManager regions, e.g. a stale tag left behind by a
//      variant swap).
//   2. No cross-domain pointer leaks — message payloads are scanned at push
//      time for values that decode to an address inside a *different*
//      component's arena. A leak raises ComponentFault(kMpkViolation)
//      attributed to the sender, so it enters the same reboot path a
//      hardware #PF would.
//   3. Reply-cycle freedom — a wait-for graph over components blocked on
//      replies is maintained; a call that would close a cycle raises
//      ComponentFault(kDeadlock) naming the cycle, instead of the message
//      plane wedging until the spin limit trips.
//
// Like the flight recorder, the checker is a debug/CI tool and off by
// default: the runtime holds a null pointer and every hook on the hot path
// is a single predicted branch (asserted by test_check).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/types.h"
#include "msg/value.h"
#include "obs/trace.h"

namespace vampos::check {

class IsolationChecker {
 public:
  /// Shadow-map owner id for the message-domain arena (the trust zone): any
  /// component payload carrying a pointer into it is a leak too.
  static constexpr ComponentId kMessageDomainOwner = -2;

  /// Checker findings are recorded as flight-recorder events when bound
  /// (Record() itself is a no-op while the recorder is disabled).
  void BindRecorder(obs::FlightRecorder* recorder) { recorder_ = recorder; }

  /// Human-readable component names for fault messages ("alpha -> beta"
  /// beats "2 -> 5"). Ids without a name print as "comp<id>".
  void RegisterComponentName(ComponentId id, std::string name);

  // ------------------------------------------------- shadow ownership map
  /// Claims [base, base+size) for `owner`. Overlap with an existing claim
  /// violates exclusive ownership: it is recorded (and traced) rather than
  /// thrown, because registration runs on the message thread at boot — the
  /// runtime surfaces the violation list as a Fatal.
  void RegisterRegion(ComponentId owner, const void* base, std::size_t size,
                      std::string label);
  /// Releases the claim starting at `base` (component destroyed, e.g.
  /// variant swap). Unknown bases are ignored.
  void UnregisterRegion(const void* base);
  [[nodiscard]] const std::vector<std::string>& ownership_violations() const {
    return ownership_violations_;
  }
  [[nodiscard]] std::size_t regions() const { return regions_.size(); }

  // ---------------------------------------------------- payload scanning
  /// Scans a payload about to be pushed by `actor` (whose protection domain
  /// is `actor_domain`, i.e. its group leader; kComponentNone for app code).
  /// Integer values and every 8-byte window of byte payloads are decoded as
  /// addresses; one that lands inside another domain's registered arena
  /// throws ComponentFault(actor, kMpkViolation).
  void ScanPayload(ComponentId actor, ComponentId actor_domain,
                   const msg::Args& payload);

  // --------------------------------------------------- wait-for graph
  /// Throws ComponentFault(from, kDeadlock) naming the cycle if a blocking
  /// call from domain `from` to domain `to` would close a wait-for cycle.
  /// Call *before* pushing the message.
  void CheckCallCycle(ComponentId from, ComponentId to);
  /// Records that domain `from` is blocked on a reply from domain `to`.
  void AddWait(std::uint64_t rpc_id, ComponentId from, ComponentId to);
  /// Drops the edge for `rpc_id`; idempotent (the runtime removes edges on
  /// every path that retires a pending reply).
  void RemoveWait(std::uint64_t rpc_id);
  [[nodiscard]] std::size_t wait_edges() const { return waits_.size(); }

  // ------------------------------------------------------------ counters
  [[nodiscard]] std::uint64_t payload_scans() const { return payload_scans_; }
  [[nodiscard]] std::uint64_t values_scanned() const {
    return values_scanned_;
  }
  [[nodiscard]] std::uint64_t leaks_detected() const {
    return leaks_detected_;
  }
  [[nodiscard]] std::uint64_t deadlocks_detected() const {
    return deadlocks_detected_;
  }
  [[nodiscard]] std::uint64_t views_checked() const { return views_checked_; }
  [[nodiscard]] std::uint64_t borrow_violations() const {
    return borrow_violations_;
  }

  /// DumpState section: counters, violations, and live wait edges.
  void Dump(std::FILE* out) const;

 private:
  struct Region {
    std::uintptr_t base;
    std::uintptr_t end;
    ComponentId owner;
    std::string label;
  };
  struct WaitEdge {
    ComponentId from;
    ComponentId to;
  };

  [[nodiscard]] const Region* FindRegion(std::uintptr_t addr) const;
  void FlagIfForeignPointer(ComponentId actor, ComponentId actor_domain,
                            std::uint64_t word);
  [[nodiscard]] std::string NameOf(ComponentId id) const;

  std::vector<Region> regions_;  // sorted by base, non-overlapping
  std::vector<std::string> ownership_violations_;
  std::unordered_map<std::uint64_t, WaitEdge> waits_;  // rpc_id -> edge
  std::unordered_map<ComponentId, std::string> names_;
  obs::FlightRecorder* recorder_ = nullptr;

  std::uint64_t payload_scans_ = 0;
  std::uint64_t values_scanned_ = 0;
  std::uint64_t leaks_detected_ = 0;
  std::uint64_t deadlocks_detected_ = 0;
  std::uint64_t views_checked_ = 0;
  std::uint64_t borrow_violations_ = 0;
};

}  // namespace vampos::check
