# Empty compiler generated dependencies file for bench_reboot.
# This may be replaced when dependencies are built.
