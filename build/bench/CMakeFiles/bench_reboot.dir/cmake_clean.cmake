file(REMOVE_RECURSE
  "CMakeFiles/bench_reboot.dir/bench_reboot.cpp.o"
  "CMakeFiles/bench_reboot.dir/bench_reboot.cpp.o.d"
  "bench_reboot"
  "bench_reboot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reboot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
