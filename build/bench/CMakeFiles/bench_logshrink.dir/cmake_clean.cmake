file(REMOVE_RECURSE
  "CMakeFiles/bench_logshrink.dir/bench_logshrink.cpp.o"
  "CMakeFiles/bench_logshrink.dir/bench_logshrink.cpp.o.d"
  "bench_logshrink"
  "bench_logshrink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_logshrink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
