# Empty compiler generated dependencies file for bench_logshrink.
# This may be replaced when dependencies are built.
