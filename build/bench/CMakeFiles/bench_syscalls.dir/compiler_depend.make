# Empty compiler generated dependencies file for bench_syscalls.
# This may be replaced when dependencies are built.
