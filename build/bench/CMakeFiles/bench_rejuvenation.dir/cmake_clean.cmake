file(REMOVE_RECURSE
  "CMakeFiles/bench_rejuvenation.dir/bench_rejuvenation.cpp.o"
  "CMakeFiles/bench_rejuvenation.dir/bench_rejuvenation.cpp.o.d"
  "bench_rejuvenation"
  "bench_rejuvenation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rejuvenation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
