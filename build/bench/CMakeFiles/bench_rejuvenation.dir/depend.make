# Empty dependencies file for bench_rejuvenation.
# This may be replaced when dependencies are built.
