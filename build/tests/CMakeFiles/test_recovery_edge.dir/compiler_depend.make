# Empty compiler generated dependencies file for test_recovery_edge.
# This may be replaced when dependencies are built.
