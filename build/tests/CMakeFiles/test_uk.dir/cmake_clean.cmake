file(REMOVE_RECURSE
  "CMakeFiles/test_uk.dir/test_uk.cc.o"
  "CMakeFiles/test_uk.dir/test_uk.cc.o.d"
  "test_uk"
  "test_uk.pdb"
  "test_uk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
