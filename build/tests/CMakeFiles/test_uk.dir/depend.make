# Empty dependencies file for test_uk.
# This may be replaced when dependencies are built.
