
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_vfs_ext.cc" "tests/CMakeFiles/test_vfs_ext.dir/test_vfs_ext.cc.o" "gcc" "tests/CMakeFiles/test_vfs_ext.dir/test_vfs_ext.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vampos_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vampos_uk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vampos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vampos_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vampos_mpk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vampos_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vampos_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vampos_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
