file(REMOVE_RECURSE
  "CMakeFiles/test_vfs_ext.dir/test_vfs_ext.cc.o"
  "CMakeFiles/test_vfs_ext.dir/test_vfs_ext.cc.o.d"
  "test_vfs_ext"
  "test_vfs_ext.pdb"
  "test_vfs_ext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vfs_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
