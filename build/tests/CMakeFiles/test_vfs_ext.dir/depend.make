# Empty dependencies file for test_vfs_ext.
# This may be replaced when dependencies are built.
