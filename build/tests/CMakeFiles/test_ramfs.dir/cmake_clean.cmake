file(REMOVE_RECURSE
  "CMakeFiles/test_ramfs.dir/test_ramfs.cc.o"
  "CMakeFiles/test_ramfs.dir/test_ramfs.cc.o.d"
  "test_ramfs"
  "test_ramfs.pdb"
  "test_ramfs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ramfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
