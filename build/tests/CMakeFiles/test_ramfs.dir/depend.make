# Empty dependencies file for test_ramfs.
# This may be replaced when dependencies are built.
