# Empty dependencies file for test_apps_ext.
# This may be replaced when dependencies are built.
