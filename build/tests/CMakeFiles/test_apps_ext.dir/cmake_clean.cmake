file(REMOVE_RECURSE
  "CMakeFiles/test_apps_ext.dir/test_apps_ext.cc.o"
  "CMakeFiles/test_apps_ext.dir/test_apps_ext.cc.o.d"
  "test_apps_ext"
  "test_apps_ext.pdb"
  "test_apps_ext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
