# Empty compiler generated dependencies file for test_ninep_fuzz.
# This may be replaced when dependencies are built.
