file(REMOVE_RECURSE
  "CMakeFiles/test_ninep_fuzz.dir/test_ninep_fuzz.cc.o"
  "CMakeFiles/test_ninep_fuzz.dir/test_ninep_fuzz.cc.o.d"
  "test_ninep_fuzz"
  "test_ninep_fuzz.pdb"
  "test_ninep_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ninep_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
