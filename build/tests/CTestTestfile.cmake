# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_stack[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_mpk[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_msg[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_vfs_ext[1]_include.cmake")
include("/root/repo/build/tests/test_fault_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_uk[1]_include.cmake")
include("/root/repo/build/tests/test_udp[1]_include.cmake")
include("/root/repo/build/tests/test_recovery_edge[1]_include.cmake")
include("/root/repo/build/tests/test_apps_ext[1]_include.cmake")
include("/root/repo/build/tests/test_soak[1]_include.cmake")
include("/root/repo/build/tests/test_ninep_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_ramfs[1]_include.cmake")
