file(REMOVE_RECURSE
  "libvampos_msg.a"
)
