file(REMOVE_RECURSE
  "CMakeFiles/vampos_msg.dir/msg/domain.cc.o"
  "CMakeFiles/vampos_msg.dir/msg/domain.cc.o.d"
  "CMakeFiles/vampos_msg.dir/msg/value.cc.o"
  "CMakeFiles/vampos_msg.dir/msg/value.cc.o.d"
  "libvampos_msg.a"
  "libvampos_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vampos_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
