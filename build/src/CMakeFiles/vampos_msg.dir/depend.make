# Empty dependencies file for vampos_msg.
# This may be replaced when dependencies are built.
