
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/msg/domain.cc" "src/CMakeFiles/vampos_msg.dir/msg/domain.cc.o" "gcc" "src/CMakeFiles/vampos_msg.dir/msg/domain.cc.o.d"
  "/root/repo/src/msg/value.cc" "src/CMakeFiles/vampos_msg.dir/msg/value.cc.o" "gcc" "src/CMakeFiles/vampos_msg.dir/msg/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vampos_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vampos_mpk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vampos_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
