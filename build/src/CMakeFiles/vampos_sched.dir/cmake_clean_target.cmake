file(REMOVE_RECURSE
  "libvampos_sched.a"
)
