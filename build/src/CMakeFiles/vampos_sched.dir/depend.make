# Empty dependencies file for vampos_sched.
# This may be replaced when dependencies are built.
