file(REMOVE_RECURSE
  "CMakeFiles/vampos_sched.dir/sched/fiber.cc.o"
  "CMakeFiles/vampos_sched.dir/sched/fiber.cc.o.d"
  "libvampos_sched.a"
  "libvampos_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vampos_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
