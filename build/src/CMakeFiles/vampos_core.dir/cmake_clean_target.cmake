file(REMOVE_RECURSE
  "libvampos_core.a"
)
