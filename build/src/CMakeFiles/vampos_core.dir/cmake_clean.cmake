file(REMOVE_RECURSE
  "CMakeFiles/vampos_core.dir/comp/component.cc.o"
  "CMakeFiles/vampos_core.dir/comp/component.cc.o.d"
  "CMakeFiles/vampos_core.dir/core/recovery.cc.o"
  "CMakeFiles/vampos_core.dir/core/recovery.cc.o.d"
  "CMakeFiles/vampos_core.dir/core/rejuvenation.cc.o"
  "CMakeFiles/vampos_core.dir/core/rejuvenation.cc.o.d"
  "CMakeFiles/vampos_core.dir/core/runtime.cc.o"
  "CMakeFiles/vampos_core.dir/core/runtime.cc.o.d"
  "libvampos_core.a"
  "libvampos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vampos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
