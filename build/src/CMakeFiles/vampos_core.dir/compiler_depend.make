# Empty compiler generated dependencies file for vampos_core.
# This may be replaced when dependencies are built.
