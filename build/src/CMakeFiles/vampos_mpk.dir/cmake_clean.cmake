file(REMOVE_RECURSE
  "CMakeFiles/vampos_mpk.dir/mpk/mpk.cc.o"
  "CMakeFiles/vampos_mpk.dir/mpk/mpk.cc.o.d"
  "libvampos_mpk.a"
  "libvampos_mpk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vampos_mpk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
