# Empty dependencies file for vampos_mpk.
# This may be replaced when dependencies are built.
