file(REMOVE_RECURSE
  "libvampos_mpk.a"
)
