# Empty compiler generated dependencies file for vampos_base.
# This may be replaced when dependencies are built.
