file(REMOVE_RECURSE
  "libvampos_base.a"
)
