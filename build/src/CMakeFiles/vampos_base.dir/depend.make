# Empty dependencies file for vampos_base.
# This may be replaced when dependencies are built.
