file(REMOVE_RECURSE
  "CMakeFiles/vampos_base.dir/base/diag.cc.o"
  "CMakeFiles/vampos_base.dir/base/diag.cc.o.d"
  "CMakeFiles/vampos_base.dir/base/panic.cc.o"
  "CMakeFiles/vampos_base.dir/base/panic.cc.o.d"
  "libvampos_base.a"
  "libvampos_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vampos_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
