# Empty compiler generated dependencies file for vampos_uk.
# This may be replaced when dependencies are built.
