
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uk/lwip/lwip.cc" "src/CMakeFiles/vampos_uk.dir/uk/lwip/lwip.cc.o" "gcc" "src/CMakeFiles/vampos_uk.dir/uk/lwip/lwip.cc.o.d"
  "/root/repo/src/uk/netdev/netdev.cc" "src/CMakeFiles/vampos_uk.dir/uk/netdev/netdev.cc.o" "gcc" "src/CMakeFiles/vampos_uk.dir/uk/netdev/netdev.cc.o.d"
  "/root/repo/src/uk/ninep/ninep.cc" "src/CMakeFiles/vampos_uk.dir/uk/ninep/ninep.cc.o" "gcc" "src/CMakeFiles/vampos_uk.dir/uk/ninep/ninep.cc.o.d"
  "/root/repo/src/uk/platform.cc" "src/CMakeFiles/vampos_uk.dir/uk/platform.cc.o" "gcc" "src/CMakeFiles/vampos_uk.dir/uk/platform.cc.o.d"
  "/root/repo/src/uk/procinfo/procinfo.cc" "src/CMakeFiles/vampos_uk.dir/uk/procinfo/procinfo.cc.o" "gcc" "src/CMakeFiles/vampos_uk.dir/uk/procinfo/procinfo.cc.o.d"
  "/root/repo/src/uk/ramfs/ramfs.cc" "src/CMakeFiles/vampos_uk.dir/uk/ramfs/ramfs.cc.o" "gcc" "src/CMakeFiles/vampos_uk.dir/uk/ramfs/ramfs.cc.o.d"
  "/root/repo/src/uk/vfs/vfs.cc" "src/CMakeFiles/vampos_uk.dir/uk/vfs/vfs.cc.o" "gcc" "src/CMakeFiles/vampos_uk.dir/uk/vfs/vfs.cc.o.d"
  "/root/repo/src/uk/virtio/virtio.cc" "src/CMakeFiles/vampos_uk.dir/uk/virtio/virtio.cc.o" "gcc" "src/CMakeFiles/vampos_uk.dir/uk/virtio/virtio.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vampos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vampos_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vampos_mpk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vampos_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vampos_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vampos_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
