file(REMOVE_RECURSE
  "libvampos_uk.a"
)
