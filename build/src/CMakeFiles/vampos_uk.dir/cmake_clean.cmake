file(REMOVE_RECURSE
  "CMakeFiles/vampos_uk.dir/uk/lwip/lwip.cc.o"
  "CMakeFiles/vampos_uk.dir/uk/lwip/lwip.cc.o.d"
  "CMakeFiles/vampos_uk.dir/uk/netdev/netdev.cc.o"
  "CMakeFiles/vampos_uk.dir/uk/netdev/netdev.cc.o.d"
  "CMakeFiles/vampos_uk.dir/uk/ninep/ninep.cc.o"
  "CMakeFiles/vampos_uk.dir/uk/ninep/ninep.cc.o.d"
  "CMakeFiles/vampos_uk.dir/uk/platform.cc.o"
  "CMakeFiles/vampos_uk.dir/uk/platform.cc.o.d"
  "CMakeFiles/vampos_uk.dir/uk/procinfo/procinfo.cc.o"
  "CMakeFiles/vampos_uk.dir/uk/procinfo/procinfo.cc.o.d"
  "CMakeFiles/vampos_uk.dir/uk/ramfs/ramfs.cc.o"
  "CMakeFiles/vampos_uk.dir/uk/ramfs/ramfs.cc.o.d"
  "CMakeFiles/vampos_uk.dir/uk/vfs/vfs.cc.o"
  "CMakeFiles/vampos_uk.dir/uk/vfs/vfs.cc.o.d"
  "CMakeFiles/vampos_uk.dir/uk/virtio/virtio.cc.o"
  "CMakeFiles/vampos_uk.dir/uk/virtio/virtio.cc.o.d"
  "libvampos_uk.a"
  "libvampos_uk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vampos_uk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
