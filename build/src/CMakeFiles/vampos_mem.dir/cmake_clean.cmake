file(REMOVE_RECURSE
  "CMakeFiles/vampos_mem.dir/mem/arena.cc.o"
  "CMakeFiles/vampos_mem.dir/mem/arena.cc.o.d"
  "CMakeFiles/vampos_mem.dir/mem/buddy_allocator.cc.o"
  "CMakeFiles/vampos_mem.dir/mem/buddy_allocator.cc.o.d"
  "CMakeFiles/vampos_mem.dir/mem/snapshot.cc.o"
  "CMakeFiles/vampos_mem.dir/mem/snapshot.cc.o.d"
  "libvampos_mem.a"
  "libvampos_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vampos_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
