file(REMOVE_RECURSE
  "libvampos_mem.a"
)
