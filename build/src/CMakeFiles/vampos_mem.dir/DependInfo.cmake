
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/arena.cc" "src/CMakeFiles/vampos_mem.dir/mem/arena.cc.o" "gcc" "src/CMakeFiles/vampos_mem.dir/mem/arena.cc.o.d"
  "/root/repo/src/mem/buddy_allocator.cc" "src/CMakeFiles/vampos_mem.dir/mem/buddy_allocator.cc.o" "gcc" "src/CMakeFiles/vampos_mem.dir/mem/buddy_allocator.cc.o.d"
  "/root/repo/src/mem/snapshot.cc" "src/CMakeFiles/vampos_mem.dir/mem/snapshot.cc.o" "gcc" "src/CMakeFiles/vampos_mem.dir/mem/snapshot.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vampos_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
