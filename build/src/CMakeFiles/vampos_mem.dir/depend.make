# Empty dependencies file for vampos_mem.
# This may be replaced when dependencies are built.
