file(REMOVE_RECURSE
  "libvampos_apps.a"
)
