file(REMOVE_RECURSE
  "CMakeFiles/vampos_apps.dir/apps/echo.cc.o"
  "CMakeFiles/vampos_apps.dir/apps/echo.cc.o.d"
  "CMakeFiles/vampos_apps.dir/apps/kvstore.cc.o"
  "CMakeFiles/vampos_apps.dir/apps/kvstore.cc.o.d"
  "CMakeFiles/vampos_apps.dir/apps/minidb.cc.o"
  "CMakeFiles/vampos_apps.dir/apps/minidb.cc.o.d"
  "CMakeFiles/vampos_apps.dir/apps/netclient.cc.o"
  "CMakeFiles/vampos_apps.dir/apps/netclient.cc.o.d"
  "CMakeFiles/vampos_apps.dir/apps/posix.cc.o"
  "CMakeFiles/vampos_apps.dir/apps/posix.cc.o.d"
  "CMakeFiles/vampos_apps.dir/apps/stack.cc.o"
  "CMakeFiles/vampos_apps.dir/apps/stack.cc.o.d"
  "CMakeFiles/vampos_apps.dir/apps/webserver.cc.o"
  "CMakeFiles/vampos_apps.dir/apps/webserver.cc.o.d"
  "libvampos_apps.a"
  "libvampos_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vampos_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
