
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/echo.cc" "src/CMakeFiles/vampos_apps.dir/apps/echo.cc.o" "gcc" "src/CMakeFiles/vampos_apps.dir/apps/echo.cc.o.d"
  "/root/repo/src/apps/kvstore.cc" "src/CMakeFiles/vampos_apps.dir/apps/kvstore.cc.o" "gcc" "src/CMakeFiles/vampos_apps.dir/apps/kvstore.cc.o.d"
  "/root/repo/src/apps/minidb.cc" "src/CMakeFiles/vampos_apps.dir/apps/minidb.cc.o" "gcc" "src/CMakeFiles/vampos_apps.dir/apps/minidb.cc.o.d"
  "/root/repo/src/apps/netclient.cc" "src/CMakeFiles/vampos_apps.dir/apps/netclient.cc.o" "gcc" "src/CMakeFiles/vampos_apps.dir/apps/netclient.cc.o.d"
  "/root/repo/src/apps/posix.cc" "src/CMakeFiles/vampos_apps.dir/apps/posix.cc.o" "gcc" "src/CMakeFiles/vampos_apps.dir/apps/posix.cc.o.d"
  "/root/repo/src/apps/stack.cc" "src/CMakeFiles/vampos_apps.dir/apps/stack.cc.o" "gcc" "src/CMakeFiles/vampos_apps.dir/apps/stack.cc.o.d"
  "/root/repo/src/apps/webserver.cc" "src/CMakeFiles/vampos_apps.dir/apps/webserver.cc.o" "gcc" "src/CMakeFiles/vampos_apps.dir/apps/webserver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vampos_uk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vampos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vampos_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vampos_mpk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vampos_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vampos_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vampos_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
