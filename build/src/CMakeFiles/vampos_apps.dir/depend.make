# Empty dependencies file for vampos_apps.
# This may be replaced when dependencies are built.
