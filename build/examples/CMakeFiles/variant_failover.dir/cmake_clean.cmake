file(REMOVE_RECURSE
  "CMakeFiles/variant_failover.dir/variant_failover.cpp.o"
  "CMakeFiles/variant_failover.dir/variant_failover.cpp.o.d"
  "variant_failover"
  "variant_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variant_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
