# Empty dependencies file for variant_failover.
# This may be replaced when dependencies are built.
