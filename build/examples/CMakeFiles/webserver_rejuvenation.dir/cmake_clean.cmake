file(REMOVE_RECURSE
  "CMakeFiles/webserver_rejuvenation.dir/webserver_rejuvenation.cpp.o"
  "CMakeFiles/webserver_rejuvenation.dir/webserver_rejuvenation.cpp.o.d"
  "webserver_rejuvenation"
  "webserver_rejuvenation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webserver_rejuvenation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
