# Empty dependencies file for webserver_rejuvenation.
# This may be replaced when dependencies are built.
