file(REMOVE_RECURSE
  "CMakeFiles/echo_server.dir/echo_server.cpp.o"
  "CMakeFiles/echo_server.dir/echo_server.cpp.o.d"
  "echo_server"
  "echo_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/echo_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
