# Empty dependencies file for inspector.
# This may be replaced when dependencies are built.
