file(REMOVE_RECURSE
  "CMakeFiles/inspector.dir/inspector.cpp.o"
  "CMakeFiles/inspector.dir/inspector.cpp.o.d"
  "inspector"
  "inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
